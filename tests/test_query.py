"""``repro query``: offline interrogation of observability artifacts."""

import json
import time

from repro.cli import main as cli_main
from repro.obs.query import (
    filter_events,
    load_artifact,
    main,
    render_path,
    top_values,
    witness_path,
)
from repro.obs.statespace import GRAPH_SCHEMA

EVENTS = [
    {"ev": "meta", "schema": "repro-events/1", "seq": 0, "t": 0.0},
    {"ev": "span-enter", "name": "psna.explore", "seq": 1, "t": 0.1},
    {"ev": "state", "span": "psna.explore", "states": 500, "seq": 2,
     "t": 0.2, "case": 3},
    {"ev": "truncation", "span": "psna.explore", "reason": "state-bound",
     "last_rule": "rule.psna.thread.read", "seq": 3, "t": 0.3},
    {"ev": "coverage", "rules": {"rule.psna.thread.read": 9,
                                 "rule.seq.machine.silent": 2},
     "seq": 4, "t": 0.4},
]

ELEMENTS = {
    "nodes": [
        {"id": 0, "depth": 0, "flags": "", "label": ""},
        {"id": 1, "depth": 1, "flags": "", "label": ""},
        {"id": 2, "depth": 2, "flags": "terminal", "label": "ret (1, 0)"},
        {"id": 3, "depth": 1, "flags": "", "label": ""},
    ],
    "edges": [[0, 1, "rule.demo.a"], [1, 2, "rule.demo.b"],
              [0, 3, "rule.demo.c"]],
    "truncated": False,
}

GRAPH = {
    "schema": GRAPH_SCHEMA,
    "graphs": {"g": {
        "instances": 1, "states": 4, "edges": 3, "dedup_hits": 1,
        "dedup_misses": 4, "terminal_states": 1, "bottom_states": 0,
        "stuck_states": 0, "truncations": 0, "depth_max": 2,
        "peak_frontier": 2,
        "rules": {"rule.demo.a": 1, "rule.demo.b": 1, "rule.demo.c": 1},
        "branching_hist": {"0": 2, "1": 1, "2": 1},
        "depth_hist": {"0": 1, "1": 2, "2": 1},
        "frontier_curve": [1, 2, 1], "frontier_stride": 1,
        "elements": ELEMENTS,
    }},
}


def _write_events(tmp_path, events=EVENTS):
    path = tmp_path / "events.ndjson"
    path.write_text("".join(json.dumps(event) + "\n" for event in events))
    return str(path)


def _write_graph(tmp_path, payload=GRAPH):
    path = tmp_path / "graph.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoadArtifact:
    def test_detects_graph_reports(self, tmp_path):
        kind, data = load_artifact(_write_graph(tmp_path))
        assert kind == "graph" and "g" in data["graphs"]

    def test_detects_event_streams(self, tmp_path):
        kind, data = load_artifact(_write_events(tmp_path))
        assert kind == "events" and len(data) == len(EVENTS)

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("not json at all\n")
        try:
            load_artifact(str(path))
        except ValueError as error:
            assert "not JSON" in str(error)
        else:
            raise AssertionError("expected ValueError")


class TestFilters:
    def test_kind_filter(self):
        assert [e["ev"] for e in filter_events(EVENTS, kind="state")] \
            == ["state"]

    def test_span_filter_matches_span_or_name(self):
        matched = filter_events(EVENTS, span="psna.explore")
        assert {e["ev"] for e in matched} \
            == {"span-enter", "state", "truncation"}

    def test_rule_filter_is_substring_and_reads_histograms(self):
        matched = filter_events(EVENTS, rule="thread.read")
        assert {e["ev"] for e in matched} == {"truncation", "coverage"}

    def test_case_filter(self):
        assert [e["ev"] for e in filter_events(EVENTS, case=3)] == ["state"]

    def test_filters_compose(self):
        assert filter_events(EVENTS, kind="state", case=99) == []


class TestTopValues:
    def test_scalar_field(self):
        ranked = top_values(EVENTS, "ev", 2)
        assert len(ranked) == 2 and ranked[0][1] == 1

    def test_histogram_field_folds_weights(self):
        ranked = top_values(EVENTS, "rules", 5)
        assert ranked[0] == ("rule.psna.thread.read", 9)
        assert ranked[1] == ("rule.seq.machine.silent", 2)


class TestWitnessPath:
    def test_path_to_flag(self):
        path = witness_path(ELEMENTS, "terminal")
        assert [entry["node"] for entry in path] == [0, 1, 2]
        assert [entry["via"] for entry in path] \
            == [None, "rule.demo.a", "rule.demo.b"]
        text = render_path(path)
        assert "2 step(s)" in text and "rule.demo.b" in text

    def test_path_to_label_substring(self):
        path = witness_path(ELEMENTS, "(1, 0)")
        assert path[-1]["node"] == 2

    def test_unreachable_selector(self):
        assert witness_path(ELEMENTS, "bottom") is None


class TestQueryCli:
    def test_graph_summary(self, tmp_path, capsys):
        assert main([_write_graph(tmp_path)]) == 0
        row = json.loads(capsys.readouterr().out.splitlines()[0])
        assert row["graph"] == "g" and row["states"] == 4

    def test_graph_top_rules(self, tmp_path, capsys):
        assert main([_write_graph(tmp_path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "rule.demo.a" in out and "rule.demo.c" not in out

    def test_graph_path_to(self, tmp_path, capsys):
        assert main([_write_graph(tmp_path), "--path-to", "terminal"]) == 0
        assert "witness path" in capsys.readouterr().out

    def test_path_to_without_elements_is_an_error(self, tmp_path, capsys):
        stripped = json.loads(json.dumps(GRAPH))
        del stripped["graphs"]["g"]["elements"]
        path = tmp_path / "stats-only.json"
        path.write_text(json.dumps(stripped))
        assert main([str(path), "--path-to", "terminal"]) == 2
        assert "no elements" in capsys.readouterr().err

    def test_event_filter_prints_ndjson(self, tmp_path, capsys):
        assert main([_write_events(tmp_path), "--kind", "truncation"]) == 0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["reason"] == "state-bound"

    def test_no_match_exits_one(self, tmp_path, capsys):
        assert main([_write_events(tmp_path), "--kind", "nope"]) == 1

    def test_unreadable_artifact_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.ndjson")]) == 2
        assert "error" in capsys.readouterr().err

    def test_repro_query_subcommand(self, tmp_path, capsys):
        """The same queries run through `repro query`."""
        assert cli_main(["query", _write_events(tmp_path),
                         "--rule", "thread.read", "--top", "3",
                         "--by", "rules"]) == 0
        out = capsys.readouterr().out
        assert "rule.psna.thread.read" in out

    def test_follow_closed_stream_prints_matches_and_exits_zero(
            self, tmp_path, capsys):
        """A stream whose writer already closed (final ``coverage``
        line present) drains in one poll and exits 0 without waiting
        for the idle timeout."""
        assert main([_write_events(tmp_path), "--follow",
                     "--kind", "truncation", "--poll", "0.01"]) == 0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["reason"] == "state-bound"

    def test_follow_tails_a_live_writer(self, tmp_path, capsys):
        """Events appended after the follow starts are still seen —
        including a line the writer flushes in two partial chunks."""
        import threading
        import time

        path = tmp_path / "live.ndjson"
        path.write_text("")

        def writer():
            with open(path, "a") as handle:
                for event in EVENTS[:-1]:
                    time.sleep(0.05)
                    handle.write(json.dumps(event) + "\n")
                    handle.flush()
                closing = json.dumps(EVENTS[-1]) + "\n"
                handle.write(closing[:10])
                handle.flush()
                time.sleep(0.05)
                handle.write(closing[10:])

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            assert main([str(path), "--follow", "--kind", "state",
                         "--poll", "0.01", "--idle-timeout", "10"]) == 0
        finally:
            thread.join()
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["states"] == 500

    def test_follow_without_match_exits_one(self, tmp_path, capsys):
        assert main([_write_events(tmp_path), "--follow", "--kind",
                     "nope", "--poll", "0.01"]) == 1

    def test_follow_idle_timeout_covers_unclosed_streams(
            self, tmp_path, capsys):
        """No ``coverage`` sentinel: the idle timeout ends the follow,
        exit status still reflects whether anything matched."""
        path = tmp_path / "unclosed.ndjson"
        path.write_text(json.dumps(EVENTS[1]) + "\n")
        assert main([str(path), "--follow", "--kind", "span-enter",
                     "--poll", "0.01", "--idle-timeout", "0.2"]) == 0
        assert main([str(path), "--follow", "--kind", "nope",
                     "--poll", "0.01", "--idle-timeout", "0.2"]) == 1

    def test_follow_exits_on_stream_end_sentinel(self, tmp_path, capsys):
        """Service job streams end with ``stream-end`` instead of a
        ``coverage`` line (cached jobs carry no rule counters); the
        follow must exit on it immediately, not wait out the idle
        timeout."""
        path = tmp_path / "job.ndjson"
        path.write_text(json.dumps({"ev": "state", "states": 500}) + "\n"
                        + json.dumps({"ev": "stream-end",
                                      "job": "j-xyz"}) + "\n")
        started = time.monotonic()
        assert main([str(path), "--follow", "--kind", "state",
                     "--poll", "0.01", "--idle-timeout", "30"]) == 0
        assert time.monotonic() - started < 5.0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["states"] == 500

    def test_follow_partial_line_dribble_trips_idle_timeout(
            self, tmp_path, capsys):
        """A writer that keeps appending bytes without ever finishing a
        line is not alive: only complete lines reset the idle deadline,
        so the follow still terminates."""
        import threading

        path = tmp_path / "dribble.ndjson"
        path.write_text(json.dumps(EVENTS[1]) + "\n")
        stop = threading.Event()

        def dribbler():
            with open(path, "a") as handle:
                while not stop.is_set():
                    handle.write("x")
                    handle.flush()
                    time.sleep(0.02)

        thread = threading.Thread(target=dribbler)
        thread.start()
        try:
            started = time.monotonic()
            assert main([str(path), "--follow", "--kind", "span-enter",
                         "--poll", "0.01", "--idle-timeout", "0.3"]) == 0
            assert time.monotonic() - started < 5.0
        finally:
            stop.set()
            thread.join()

    def test_follow_missing_file_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "never.ndjson"), "--follow",
                     "--poll", "0.01", "--idle-timeout", "0.2"]) == 2
        assert "did not appear" in capsys.readouterr().err

    def test_follow_rejects_graph_queries(self, tmp_path, capsys):
        assert main([_write_events(tmp_path), "--follow",
                     "--top", "3"]) == 2
        assert "--follow" in capsys.readouterr().err

    def test_end_to_end_stream_then_query(self, tmp_path, capsys):
        """Stream a real run, then extract its truncation events."""
        stream = str(tmp_path / "run.ndjson")
        assert cli_main(["explore", "--machine", "pf", "--max-states", "5",
                         "--stream", stream,
                         "x_rlx := 1; a := y_rlx; return a;",
                         "y_rlx := 1; b := x_rlx; return b;"]) == 0
        capsys.readouterr()
        assert cli_main(["query", stream, "--kind", "truncation"]) == 0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["span"] == "psna.explore"


class TestMetricsArtifacts:
    """``repro query`` over ``repro-servemetrics/1`` snapshots."""

    def _write_metrics(self, tmp_path):
        from repro.serve.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.inc("requests.total", 6)
        metrics.inc("requests.kind.litmus", 6)
        metrics.gauge("queue.depth", 2)
        for value in (0.001, 0.015625, 0.25):
            metrics.observe("request.latency_s", value)
        path = tmp_path / "servemetrics.json"
        path.write_text(json.dumps(metrics.snapshot()))
        return str(path)

    def test_auto_detection_prints_metric_rows(self, tmp_path, capsys):
        assert main([self._write_metrics(tmp_path)]) == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert all(row["ev"] == "metric" for row in rows)
        names = {row["name"] for row in rows}
        assert "requests.total" in names
        assert "request.latency_s" in names

    def test_kind_metrics_forces_the_reading(self, tmp_path, capsys):
        assert main([self._write_metrics(tmp_path),
                     "--kind", "metrics"]) == 0
        assert capsys.readouterr().out

    def test_kind_metrics_on_other_artifacts_is_an_error(self, tmp_path,
                                                         capsys):
        assert main([_write_events(tmp_path),
                     "--kind", "metrics"]) == 2
        assert "metrics" in capsys.readouterr().err

    def test_top_by_buckets_folds_the_histogram(self, tmp_path, capsys):
        assert main([self._write_metrics(tmp_path), "--top", "3",
                     "--by", "buckets"]) == 0
        out = capsys.readouterr().out
        assert "0.001" in out  # the populated bucket bound appears

    def test_span_filter_selects_one_metric_by_name(self, tmp_path,
                                                    capsys):
        assert main([self._write_metrics(tmp_path),
                     "--span", "request.latency_s"]) == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert [row["name"] for row in rows] == ["request.latency_s"]
        assert main([self._write_metrics(tmp_path),
                     "--span", "no.such.metric"]) == 1
