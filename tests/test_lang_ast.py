"""Tests for WHILE expressions, register files and AST traversals."""

import pytest

from repro.lang import (
    NA,
    RLX,
    UNDEF,
    Assign,
    BinOp,
    Const,
    Load,
    Reg,
    RegFile,
    Seq,
    Skip,
    Store,
    While,
    atomic_locations,
    check_no_mixed_accesses,
    constant_values,
    nonatomic_locations,
    parse,
    shared_locations,
    walk,
)
from repro.lang.ast import UBError, UnOp


class TestExprEval:
    def test_const(self):
        assert Const(5).eval(RegFile()) == 5

    def test_reg_default_zero(self):
        assert Reg("a").eval(RegFile()) == 0

    def test_reg_value(self):
        regs = RegFile.of({"a": 7})
        assert Reg("a").eval(regs) == 7

    @pytest.mark.parametrize("op,l,r,expected", [
        ("+", 2, 3, 5), ("-", 2, 3, -1), ("*", 2, 3, 6),
        ("==", 2, 2, 1), ("==", 2, 3, 0), ("!=", 2, 3, 1),
        ("<", 2, 3, 1), ("<=", 3, 3, 1), (">", 3, 2, 1), (">=", 2, 3, 0),
        ("&&", 1, 0, 0), ("&&", 2, 3, 1), ("||", 0, 0, 0), ("||", 0, 5, 1),
        ("/", 7, 2, 3), ("%", 7, 2, 1),
    ])
    def test_binops(self, op, l, r, expected):
        assert BinOp(op, Const(l), Const(r)).eval(RegFile()) == expected

    def test_division_by_zero_is_ub(self):
        with pytest.raises(UBError):
            BinOp("/", Const(1), Const(0)).eval(RegFile())

    def test_modulo_by_zero_is_ub(self):
        with pytest.raises(UBError):
            BinOp("%", Const(1), Const(0)).eval(RegFile())

    def test_division_by_undef_is_ub(self):
        with pytest.raises(UBError):
            BinOp("/", Const(1), Const(UNDEF)).eval(RegFile())

    def test_undef_propagates_through_arith(self):
        assert BinOp("+", Const(UNDEF), Const(1)).eval(RegFile()) is UNDEF
        assert BinOp("==", Const(1), Const(UNDEF)).eval(RegFile()) is UNDEF

    def test_undef_dividend_defined_divisor(self):
        assert BinOp("/", Const(UNDEF), Const(2)).eval(RegFile()) is UNDEF

    def test_unops(self):
        assert UnOp("-", Const(3)).eval(RegFile()) == -3
        assert UnOp("!", Const(0)).eval(RegFile()) == 1
        assert UnOp("!", Const(5)).eval(RegFile()) == 0
        assert UnOp("-", Const(UNDEF)).eval(RegFile()) is UNDEF

    def test_registers_collected(self):
        expr = BinOp("+", Reg("a"), BinOp("*", Reg("b"), Const(2)))
        assert expr.registers() == frozenset({"a", "b"})


class TestRegFile:
    def test_set_get(self):
        regs = RegFile().set("a", 1).set("b", 2).set("a", 3)
        assert regs.get("a") == 3
        assert regs.get("b") == 2

    def test_immutable_and_hashable(self):
        regs = RegFile.of({"a": 1})
        updated = regs.set("a", 2)
        assert regs.get("a") == 1
        assert hash(regs) != hash(updated)
        assert RegFile.of({"a": 1, "b": 2}) == RegFile.of({"b": 2, "a": 1})

    def test_as_dict(self):
        assert RegFile.of({"a": 1}).as_dict() == {"a": 1}


class TestTraversals:
    def test_walk_covers_nesting(self):
        program = parse("while a < 3 { if a { x_na := 1; } a := a + 1; }")
        kinds = [type(node).__name__ for node in walk(program)]
        assert "While" in kinds and "If" in kinds and "Store" in kinds

    def test_shared_locations(self):
        program = parse("x_na := 1; a := y_rlx; b := z_acq;")
        assert shared_locations(program) == frozenset({"x", "y", "z"})

    def test_nonatomic_vs_atomic_locations(self):
        program = parse("x_na := 1; a := y_rlx; z_rel := 2;")
        assert nonatomic_locations(program) == frozenset({"x"})
        assert atomic_locations(program) == frozenset({"y", "z"})

    def test_constant_values(self):
        program = parse("a := 3 + 4; if a == 7 { x_na := 9; }")
        assert constant_values(program) == frozenset({3, 4, 7, 9})

    def test_mixed_access_check(self):
        ok = parse("x_na := 1; a := y_acq;")
        check_no_mixed_accesses(ok)
        bad = parse("x_na := 1; a := x_acq;")
        with pytest.raises(ValueError, match="mixing"):
            check_no_mixed_accesses(bad)

    def test_seq_of_flattens(self):
        inner = Seq.of(Skip(), Skip())
        outer = Seq.of(inner, Skip())
        assert len(outer.stmts) == 3

    def test_rmw_counts_as_atomic(self):
        program = parse("a := fadd_rlx_rlx(x_rlx, 1);")
        assert atomic_locations(program) == frozenset({"x"})
