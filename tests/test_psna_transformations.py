"""§5 "Results": transformation soundness directly in PS^na.

The paper ports all PS2.1 thread-local transformation soundness proofs to
PS^na and additionally proves that strengthening non-atomics to atomics
is sound.  These tests check the observable consequences on whole
programs via Def 5.3.
"""

import pytest

from repro.lang import parse
from repro.psna import PsConfig, check_psna_refinement

PF = PsConfig(allow_promises=False, values=(0, 1, 2))
FULL = PsConfig(promise_budget=1, values=(0, 1))

RACY_READER = "r := x_na; return r;"
RACY_WRITER = "x_na := 5; return 0;"
SYNC_READER = "r := y_acq; if r == 1 { s := x_na; return s; } return 9;"


def refines(src_main, tgt_main, context, config=PF):
    return check_psna_refinement(
        [parse(src_main), parse(context)],
        [parse(tgt_main), parse(context)],
        config)


class TestStrengthening:
    """Strengthening na → rlx accesses is sound in PS^na (§5)."""

    @pytest.mark.parametrize("context",
                             [RACY_READER, RACY_WRITER, SYNC_READER])
    def test_write_strengthening(self, context):
        verdict = refines("x_na := 1; y_rel := 1; return 0;",
                          "x_rlx := 1; y_rel := 1; return 0;", context)
        assert verdict.refines, verdict

    @pytest.mark.parametrize("context", [RACY_READER, RACY_WRITER])
    def test_read_strengthening(self, context):
        verdict = refines("a := x_na; return a;",
                          "a := x_rlx; return a;", context)
        assert verdict.refines, verdict

    def test_weakening_rlx_to_na_unsound(self):
        """The converse introduces UB under an atomic writer."""
        verdict = refines("x_rlx := 1; return 0;",
                          "x_na := 1; return 0;", "x_rlx := 5; return 0;")
        assert not verdict.refines


class TestThreadLocalTransformations:
    def test_slf_under_racy_reader(self):
        verdict = refines("x_na := 1; b := x_na; return b;",
                          "x_na := 1; b := 1; return b;", RACY_READER)
        assert verdict.refines

    def test_na_reorder_under_contexts(self):
        verdict = refines("a := x_na; w_na := 1; return a;",
                          "w_na := 1; a := x_na; return a;", RACY_READER)
        assert verdict.refines

    def test_roach_motel_write_into_acquire_section(self):
        verdict = refines("w_na := 1; a := y_acq; return a;",
                          "a := y_acq; w_na := 1; return a;", SYNC_READER)
        assert verdict.refines

    def test_load_introduction_sound_in_psna(self):
        """The headline difference from catch-fire models (§1)."""
        for context in (RACY_READER, RACY_WRITER, SYNC_READER):
            verdict = refines("return 0;", "a := x_na; return 0;", context)
            assert verdict.refines, (context, verdict)

    def test_store_introduction_unsound_in_psna(self):
        verdict = refines("return 0;", "x_na := 1; return 0;", RACY_READER)
        assert not verdict.refines

    def test_slf_across_rel_acq_pair_interference_observable(self):
        """Example 2.12's interference: the source really reads 7.

        Whole-program refinement (Def 5.3) is not violated here — the
        source's racy undef behaviors ⊑-absorb the target's forwarded
        value — but the source observably reads the context's write,
        which is what SEQ's trace-level refinement rejects.
        """
        from repro.psna import explore

        context = ("r := y_acq; if r == 1 { x_na := 7; z_rel := 1; } "
                   "return 0;")
        src = "x_na := 1; y_rel := 1; a := z_acq; b := x_na; return b;"
        result = explore([parse(src), parse(context)], PF)
        assert (7, 0) in result.returns()
        # ... while the SLF'd target can only ever return 1 or ⊥.

    def test_promise_sensitive_reordering(self):
        """Reordering a read after a store stays sound with promises on."""
        verdict = refines("a := x_rlx; w_rlx := 1; return a;",
                          "w_rlx := 1; a := x_rlx; return a;",
                          "b := w_rlx; return b;", FULL)
        assert verdict.refines
