"""Deterministic pins of known checker flakes (ROADMAP item 6).

The property tests in :mod:`test_property_optimizer` draw random seeds,
and ~0.25% of generated straightline programs hit a known SEQ-checker
false positive: a spurious ``llf`` rejection ("no source termination
matches trm(...)") after a certified release write under a read promise
on a non-atomic location, around ``freeze`` of the promised-read
register.  Seeds 4183 (length 5) and 228 (length 6) are the smallest
known members of the family.

This module replays those exact seeds as explicit
``xfail(strict=False)`` cases: the checker bug stays visible (the cases
turn XPASS the day it is fixed, at which point the marks should be
dropped and ROADMAP item 6 closed) without the property tests flaking
stochastically — they are pinned to a deterministic example stream in
:mod:`test_property_optimizer` and these seeds live here instead.

The ``--monitor`` freeze probe (``psna.cert.fulfillable`` in
:mod:`repro.obs.monitor`) instruments exactly this promise/certification
interplay; ``repro explore ... --monitor strict`` on the programs below
is the localization tool for the bug.
"""

import pytest

from repro.litmus.generator import GeneratorConfig, ProgramGenerator
from repro.opt import Optimizer
from repro.seq import Limits

FAST_LIMITS = Limits(max_game_states=8_000, max_closure_states=2_000,
                     max_escape_states=2_000)

SMALL = GeneratorConfig(na_locs=("x",), atomic_locs=("y",),
                        registers=("a", "b", "c"), values=(0, 1))

#: The known members of the flake family: (generator seed, program
#: length).  Seed 4183 generates
#: ``a := x_na; b := x_na; y_rel := (1 * c); a := x_na; b := freeze(a);
#: return 0``.
KNOWN_FLAKES = [(4183, 5), (228, 6)]


@pytest.mark.parametrize("seed,length", KNOWN_FLAKES)
@pytest.mark.xfail(
    strict=False,
    reason="ROADMAP item 6: spurious llf rejection after a certified "
           "release write under a read promise (freeze of a "
           "promised-read register); pre-existing in the seed tree")
def test_known_flake_seeds_validate(seed, length):
    program = ProgramGenerator(SMALL, seed).straightline(length=length)
    result = Optimizer(validate=True, limits=FAST_LIMITS).optimize(program)
    assert result.validated
