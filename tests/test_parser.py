"""Tests for the WHILE concrete syntax."""

import pytest

from repro.lang import (
    ACQ,
    NA,
    REL,
    RLX,
    Abort,
    Assign,
    Fence,
    FenceKind,
    Freeze,
    If,
    Load,
    ParseError,
    Print,
    Return,
    Rmw,
    Seq,
    Skip,
    Store,
    While,
    parse,
)
from repro.lang.ast import BinOp, Const, Reg, UnOp
from repro.lang.itree import CasOp, ExchangeOp, FetchAddOp
from repro.lang.parser import split_location


def test_split_location():
    assert split_location("x_na") == ("x", NA)
    assert split_location("counter_rel") == ("counter", REL)
    assert split_location("foo") is None
    assert split_location("_na") is None
    assert split_location("x_bar") is None


def test_store_and_load():
    program = parse("x_na := 1; a := y_acq;")
    assert isinstance(program, Seq)
    store, load = program.stmts
    assert store == Store("x", Const(1), NA)
    assert load == Load("a", "y", ACQ)


def test_modes():
    program = parse("x_na := 0; x2_rlx := 0; x3_rel := 0;")
    modes = [stmt.mode for stmt in program.stmts]
    assert modes == [NA, RLX, REL]


def test_register_assign():
    program = parse("a := b + 1;")
    assert program == Assign("a", BinOp("+", Reg("b"), Const(1)))


def test_freeze():
    program = parse("a := freeze(b);")
    assert program == Freeze("a", Reg("b"))


def test_rmws():
    program = parse(
        "a := fadd_rlx_rlx(x_rlx, 1);"
        "b := cas_acq_rel(x_rlx, 0, 1);"
        "c := xchg_rlx_rel(x_rlx, -2);")
    fadd, cas, xchg = program.stmts
    assert fadd == Rmw("a", "x", FetchAddOp(1), RLX, RLX)
    assert cas == Rmw("b", "x", CasOp(0, 1), ACQ, REL)
    assert xchg == Rmw("c", "x", ExchangeOp(-2), RLX, REL)


def test_if_else_and_while():
    program = parse("while a < 3 { if a == 0 { skip; } else { abort; } }")
    assert isinstance(program, While)
    assert isinstance(program.body, If)
    assert program.body.else_branch == Abort()


def test_if_without_else():
    program = parse("if a { skip; }")
    assert program == If(Reg("a"), Skip(), Skip())


def test_empty_block_is_skip():
    assert parse("if a { }") == If(Reg("a"), Skip(), Skip())


def test_fences():
    program = parse("fence_acq; fence_rel; fence_sc;")
    assert [stmt.kind for stmt in program.stmts] == [
        FenceKind.ACQ, FenceKind.REL, FenceKind.SC]


def test_return_print():
    program = parse("print(a); return a + 1;")
    assert isinstance(program.stmts[0], Print)
    assert isinstance(program.stmts[1], Return)


def test_operator_precedence():
    program = parse("a := 1 + 2 * 3 == 7;")
    expr = program.expr
    assert expr == BinOp("==", BinOp("+", Const(1),
                                     BinOp("*", Const(2), Const(3))),
                         Const(7))


def test_unary_and_parens():
    program = parse("a := -(1 + 2); b := !c;")
    neg, bang = program.stmts
    assert neg.expr == UnOp("-", BinOp("+", Const(1), Const(2)))
    assert bang.expr == UnOp("!", Reg("c"))


def test_comments():
    program = parse("""
    // a line comment
    a := 1;  # another comment
    """)
    assert program == Assign("a", Const(1))


def test_location_in_expression_rejected():
    with pytest.raises(ParseError, match="load statement"):
        parse("a := x_na + 1;")


def test_keyword_as_register_rejected():
    with pytest.raises(ParseError):
        parse("while := 1;")


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse("a := 1")


def test_unbalanced_brace_rejected():
    with pytest.raises(ParseError):
        parse("if a { skip;")


def test_rmw_args_must_be_literals():
    with pytest.raises(ParseError, match="integer literals"):
        parse("a := fadd_rlx_rlx(x_rlx, b);")


def test_roundtrip_repr_parses_like_source():
    source = "x_na := 1; a := x_na; if a { y_rel := a; } return a;"
    program = parse(source)
    assert isinstance(program, Seq)
    assert len(program.stmts) == 4
