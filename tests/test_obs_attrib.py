"""Time/visit attribution: exact self-time, folded export, merges."""

import re
import time

from repro import obs, runner
from repro.obs import attrib


def _spin(seconds):
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


class TestRecorder:
    def test_self_time_sums_to_top_level_total(self):
        with obs.session(attrib=True) as session:
            with obs.span("outer"):
                _spin(0.003)
                with obs.span("inner"):
                    _spin(0.002)
                with obs.span("inner"):
                    _spin(0.001)
            recorder = session.attrib
        frames = recorder.frames
        assert set(frames) == {("outer",), ("outer", "inner")}
        outer_self, outer_total, outer_visits = frames[("outer",)]
        inner_self, inner_total, inner_visits = frames[("outer", "inner")]
        assert outer_visits == 1 and inner_visits == 2
        # Self-time is duration minus child time, so the frame self-times
        # sum exactly (modulo float error) to the top-level span total.
        assert abs((outer_self + inner_self) - outer_total) < 1e-9
        assert abs(recorder.total_s - outer_total) < 1e-9
        assert inner_self >= 0.002
        assert outer_self >= 0.002  # its own 3ms minus nothing

    def test_disabled_session_records_nothing(self):
        with obs.session() as session:
            with obs.span("outer"):
                pass
            assert session.attrib is None

    def test_sibling_stacks_are_distinct(self):
        with obs.session(attrib=True) as session:
            with obs.span("a"):
                with obs.span("x"):
                    pass
            with obs.span("b"):
                with obs.span("x"):
                    pass
            frames = session.attrib.frames
        assert ("a", "x") in frames and ("b", "x") in frames


class TestMerge:
    def test_merge_frames_is_commutative(self):
        left = {("a",): (0.5, 1.0, 2), ("a", "b"): (0.5, 0.5, 1)}
        right = {("a",): (0.25, 0.5, 1), ("c",): (0.1, 0.1, 4)}
        one = attrib.AttribRecorder()
        attrib.merge_frames(one, left)
        attrib.merge_frames(one, right)
        other = attrib.AttribRecorder()
        attrib.merge_frames(other, right)
        attrib.merge_frames(other, left)
        assert one.frames == other.frames
        assert one.frames[("a",)] == [0.75, 1.5, 3]

    def test_snapshot_is_plain_data(self):
        recorder = attrib.AttribRecorder()
        attrib.merge_frames(recorder, {("a",): (0.5, 1.0, 2)})
        snapshot = recorder.snapshot()
        assert snapshot == {("a",): (0.5, 1.0, 2)}
        snapshot[("a",)] = (9, 9, 9)
        assert recorder.frames[("a",)] == [0.5, 1.0, 2]  # a copy


class TestRuleApportionment:
    def test_rules_attach_under_their_phase(self):
        frames = {("psna.explore",): [1.0, 1.0, 1]}
        counters = {"rule.psna.thread.read": 30,
                    "rule.psna.machine.lower": 10}
        result = attrib.rule_frames(frames, counters)
        read = result[("psna.explore", "rule:psna.thread.read")]
        lower = result[("psna.explore", "rule:psna.machine.lower")]
        assert read[1] == 30 and lower[1] == 10
        # The phase's self-time splits by visit share.
        assert abs(read[0] - 0.75) < 1e-9
        assert abs(lower[0] - 0.25) < 1e-9

    def test_orphan_rules_land_under_unattributed(self):
        result = attrib.rule_frames({}, {"rule.psna.cert.success": 5})
        (stack,) = result
        assert stack[0] == attrib.UNATTRIBUTED

    def test_non_rule_counters_are_ignored(self):
        assert attrib.rule_frames({}, {"seq.game.states": 100}) == {}


class TestPayloadAndFolded:
    def _payload(self):
        frames = {("outer",): [0.001, 0.003, 1],
                  ("outer", "inner"): [0.002, 0.002, 2]}
        return attrib.attrib_payload(frames, {}, meta={"command": "test"})

    def test_payload_validates(self):
        payload = self._payload()
        assert payload["schema"] == attrib.ATTRIB_SCHEMA
        assert attrib.validate_attrib_payload(payload) == []

    def test_validation_catches_damage(self):
        payload = self._payload()
        payload["frames"][0].pop("self_s")
        payload["total_s"] = -1
        problems = attrib.validate_attrib_payload(payload)
        assert any("self_s" in problem for problem in problems)
        assert any("total_s" in problem for problem in problems)

    def test_folded_format(self):
        lines = attrib.folded_lines(self._payload())
        assert lines == sorted(lines)
        for line in lines:
            assert re.fullmatch(r"[^ ]+(;[^ ]+)* \d+", line)
        assert "outer;inner 2000" in lines

    def test_zero_weight_stacks_are_kept(self):
        payload = attrib.attrib_payload({("fast",): [0.0, 0.0, 1]}, {})
        assert attrib.folded_lines(payload) == ["fast 0"]

    def test_read_folded_stacks_strips_weights(self):
        stacks = attrib.read_folded_stacks(["a;b 120", "c 0", "", "a;b 9"])
        assert stacks == {"a;b", "c"}

    def test_render_table_marks_rules(self):
        frames = {("psna.explore",): [1.0, 1.0, 1]}
        payload = attrib.attrib_payload(frames,
                                        {"rule.psna.thread.read": 4})
        table = attrib.render_attrib_table(payload)
        assert "rule:psna.thread.read" in table
        assert "~" in table


def _attrib_stacks(jobs):
    """The folded stack set of a 3-case litmus sweep at a jobs level."""
    names = ["slf-basic", "dse-across-acq-read", "example-3-1-chain"]
    with obs.session(attrib=True) as session:
        runner.run_sweep(runner.litmus_case_worker, names, jobs=jobs)
        payload = attrib.attrib_payload(session.attrib,
                                        session.metrics.snapshot()["counters"])
    return set(attrib.read_folded_stacks(attrib.folded_lines(payload)))


class TestDeterminism:
    def test_stack_set_is_identical_across_runs_and_jobs(self):
        serial_one = _attrib_stacks(jobs=1)
        serial_two = _attrib_stacks(jobs=1)
        pooled = _attrib_stacks(jobs=2)
        assert serial_one == serial_two
        assert serial_one == pooled
        assert serial_one  # the workload actually produced spans

    def test_worker_frames_merge_into_parent(self):
        with obs.session(attrib=True) as session:
            runner.run_sweep(runner.litmus_case_worker,
                             ["slf-basic", "dse-across-acq-read"], jobs=2)
            assert session.attrib.frames  # shipped across the pool
