"""Tier-1 test harness defaults.

The persistent certification store (:mod:`repro.psna.certstore`) is
disabled for the whole suite: tests must be hermetic and deterministic
regardless of what a previous run (or the developer's own CLI use) left
in ``.repro-cache/``.  Store-specific tests opt back in by pointing
``REPRO_CACHE_DIR`` at a temporary directory via ``monkeypatch``.
"""

import os

os.environ["REPRO_CACHE_DIR"] = "off"
