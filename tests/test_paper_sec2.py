"""Paper examples of §2 checked against simple behavioral refinement.

Each case in the catalog records the paper's verdict; `expected`
distinguishes transformations validated by the simple notion from those
the paper marks unsound (``{̸``).
"""

import pytest

from repro.litmus import SEC2_CASES, case_by_name
from repro.seq import check_simple_refinement, check_transformation


@pytest.mark.parametrize("case", SEC2_CASES, ids=lambda c: c.name)
def test_sec2_case(case):
    verdict = check_transformation(case.source, case.target)
    assert verdict.valid == case.expected_valid, (
        f"{case.name} ({case.paper_ref}): expected "
        f"{case.expected}, got {verdict!r}")
    assert verdict.notion == (case.expected if case.expected_valid
                              else "none")


@pytest.mark.parametrize("case", SEC2_CASES, ids=lambda c: c.name)
def test_sec2_simple_notion_agrees(case):
    """The simple notion alone gives the expected yes/no for §2 cases."""
    verdict = check_simple_refinement(case.source, case.target)
    assert verdict.refines == (case.expected == "simple")


def test_counterexample_reported_for_same_loc_reorder():
    case = case_by_name("na-reorder-same-loc")
    verdict = check_simple_refinement(case.source, case.target)
    assert not verdict.refines
    assert verdict.counterexample is not None
    assert "source" in verdict.counterexample.reason


def test_refinement_is_directional():
    """slf-basic validates src {~> tgt but not the converse with undef."""
    case = case_by_name("na-reorder-diff-loc")
    forward = check_simple_refinement(case.source, case.target)
    assert forward.refines


def test_verdicts_are_complete():
    """Litmus-scale checks should not hit exploration bounds."""
    for case in SEC2_CASES:
        verdict = check_simple_refinement(case.source, case.target)
        assert verdict.complete, case.name
