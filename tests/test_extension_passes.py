"""Tests for the extension passes: constfold, copyprop, DCE."""

import pytest

from repro.lang import parse
from repro.opt import (
    EXTENDED_PASSES,
    Optimizer,
    constfold_pass,
    copyprop_pass,
    dce_pass,
)
from repro.seq import Limits, check_transformation

FAST = Limits(max_game_states=10_000)


def validated(source_text, pass_fn):
    source = parse(source_text)
    target = pass_fn(source)
    verdict = check_transformation(source, target, limits=FAST)
    assert verdict.valid, f"{pass_fn.__name__} unsound on {source_text!r}"
    return target


class TestConstFold:
    def test_basic_fold(self):
        target = validated("a := 2; b := a + 3; return b;", constfold_pass)
        assert "b := 5" in repr(target)

    def test_fold_into_store(self):
        target = validated("a := 2; x_na := a; return 0;", constfold_pass)
        assert "x_na := 2" in repr(target)

    def test_branch_simplification(self):
        target = validated("a := 1; if a { b := 2; } else { b := 3; } "
                           "return b;", constfold_pass)
        assert "if" not in repr(target)
        assert "b := 2" in repr(target)

    def test_dead_loop_removed(self):
        target = validated("while 0 { x_na := 1; } return 7;",
                           constfold_pass)
        assert "while" not in repr(target)

    def test_infinite_loop_not_removed(self):
        target = constfold_pass(parse("while 1 { skip; } return 0;"))
        assert "while" in repr(target)

    def test_division_by_zero_preserved(self):
        target = constfold_pass(parse("a := 1 / 0; return 0;"))
        assert "/" in repr(target)

    def test_division_by_nonzero_folds(self):
        target = validated("a := 6 / 2; return a;", constfold_pass)
        assert "a := 3" in repr(target)

    def test_load_kills_constness(self):
        target = constfold_pass(parse(
            "a := 1; a := x_na; b := a + 1; return b;"))
        assert "b := (a + 1)" in repr(target)

    def test_join_at_merge(self):
        target = constfold_pass(parse(
            "if c { a := 1; } else { a := 2; } b := a; return b;"))
        assert "b := a" in repr(target)

    def test_same_constant_on_both_branches(self):
        target = validated(
            "if c { a := 1; } else { a := 1; } b := a; return b;",
            constfold_pass)
        assert "b := 1" in repr(target)

    def test_freeze_of_constant_becomes_assign(self):
        target = validated("a := 1; b := freeze(a); return b;",
                           constfold_pass)
        assert "freeze" not in repr(target)

    def test_freeze_of_load_kept(self):
        target = constfold_pass(parse(
            "a := x_na; b := freeze(a); return b;"))
        assert "freeze" in repr(target)

    def test_loop_invariant_constant(self):
        target = validated(
            "a := 3; i := 0; while i < 2 { b := a; i := i + 1; } return b;",
            constfold_pass)
        assert "b := 3" in repr(target)


class TestCopyProp:
    def test_basic_propagation(self):
        target = validated("b := a; c := b + 1; return c;", copyprop_pass)
        assert "c := (a + 1)" in repr(target)

    def test_kill_on_source_reassign(self):
        target = copyprop_pass(parse(
            "b := a; a := 5; c := b; return c;"))
        assert "c := b" in repr(target)

    def test_kill_on_target_reassign(self):
        target = copyprop_pass(parse(
            "b := a; b := x_na; c := b; return c;"))
        assert "c := b" in repr(target)

    def test_transitive_copies(self):
        target = validated("b := a; c := b; d := c; return d;",
                           copyprop_pass)
        assert "d := a" in repr(target)

    def test_into_condition(self):
        target = validated("b := a; if b { skip; } return 0;",
                           copyprop_pass)
        assert "if a" in repr(target).replace("(", "").replace(")", "")

    def test_into_store(self):
        target = validated("b := a; x_na := b; return 0;", copyprop_pass)
        assert "x_na := a" in repr(target)


class TestDce:
    def test_dead_assignment_removed(self):
        target = validated("a := 1; b := 2; return b;", dce_pass)
        assert "a := 1" not in repr(target)

    def test_live_assignment_kept(self):
        target = dce_pass(parse("a := 1; return a;"))
        assert "a := 1" in repr(target)

    def test_unused_na_load_removed(self):
        """Example 2.8: unused load elimination."""
        target = validated("a := x_na; return 0;", dce_pass)
        assert "x_na" not in repr(target)

    def test_unused_atomic_load_kept(self):
        target = dce_pass(parse("a := y_acq; return 0;"))
        assert "y_acq" in repr(target)

    def test_freeze_kept(self):
        """Dropping a choose transition would change SEQ traces (Rem 3)."""
        target = dce_pass(parse("a := x_na; b := freeze(a); return 0;"))
        assert "freeze" in repr(target)

    def test_ub_expression_kept(self):
        target = dce_pass(parse("a := 1 / c; return 0;"))
        assert "/" in repr(target)

    def test_liveness_through_condition(self):
        target = dce_pass(parse("a := 1; if a { skip; } return 0;"))
        assert "a := 1" in repr(target)

    def test_liveness_through_loop(self):
        target = dce_pass(parse(
            "a := 1; i := 0; while i < a { i := i + 1; } return i;"))
        assert "a := 1" in repr(target)

    def test_loop_carried_liveness(self):
        target = dce_pass(parse(
            "a := 1; i := 0; while i < 3 { b := a; a := b + 1; "
            "i := i + 1; } return a;"))
        assert "b := a" in repr(target)

    def test_dead_chain_removed(self):
        target = validated("a := 1; b := a + 1; c := b * 2; return 0;",
                           dce_pass)
        text = repr(target)
        assert "b :=" not in text and "c :=" not in text

    def test_store_operand_live(self):
        target = dce_pass(parse("a := 1; x_na := a; return 0;"))
        assert "a := 1" in repr(target)


class TestExtendedPipeline:
    def test_extended_passes_compose_and_validate(self):
        source = parse("""
        k := 2;
        t := k;
        x_na := t;
        a := x_na;
        b := a;
        unused := w_na;
        return b;
        """)
        result = Optimizer(passes=EXTENDED_PASSES,
                           validate=True, limits=FAST).optimize(source)
        assert result.validated
        text = repr(result.optimized)
        assert "return 2" in text or "b := 2" in text
        assert "w_na" not in text  # dead load eliminated

    def test_extended_pipeline_idempotent(self):
        source = parse("k := 2; x_na := k; a := x_na; return a;")
        optimizer = Optimizer(passes=EXTENDED_PASSES)
        once = optimizer.optimize(source).optimized
        twice = optimizer.optimize(once).optimized
        assert once == twice


@pytest.mark.parametrize("seed", range(12))
def test_extended_pipeline_sound_on_random_programs(seed):
    from repro.litmus.generator import GeneratorConfig, ProgramGenerator

    config = GeneratorConfig(na_locs=("x",), atomic_locs=("y",),
                             registers=("a", "b", "c"), values=(0, 1))
    program = ProgramGenerator(config, seed).straightline(length=7)
    result = Optimizer(passes=EXTENDED_PASSES, validate=True,
                       limits=FAST).optimize(program)
    assert result.validated
