"""Semantic rule coverage: the universe, the workload, the report."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs import coverage
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import validate_report_file


def _payload_after(**workload_kwargs):
    with obs.session() as session:
        coverage.run_coverage_workload(**workload_kwargs)
        snapshot = session.metrics.snapshot()
    return coverage.coverage_payload(snapshot)


class TestRuleUniverse:
    def test_universe_spans_all_layers(self):
        layers = {rule.layer for rule in coverage.ALL_RULES}
        assert layers == {"psna-thread", "psna-machine", "psna-cert",
                          "psna-sc", "seq-machine", "seq-game"}

    def test_rule_ids_unique(self):
        ids = [rule.id for rule in coverage.ALL_RULES]
        assert len(ids) == len(set(ids))

    def test_every_rule_has_description(self):
        assert all(rule.description for rule in coverage.ALL_RULES)


class TestWorkloadCoverage:
    def test_full_workload_fires_every_rule(self):
        """Acceptance: every PS^na and SEQ rule fires at least once."""
        payload = _payload_after(litmus=True, extended=True)
        assert payload["uncovered"] == []
        assert payload["covered"] == payload["total"] == len(
            coverage.ALL_RULES)
        assert payload["unknown_rules"] == []

    def test_targeted_workload_alone_misses_game_rules(self):
        # Without the catalog the advanced-game rules cannot fire — the
        # report must name them rather than hide the gap.
        payload = _payload_after(litmus=False)
        assert "seq.game.oracle-query" in payload["uncovered"]
        assert payload["covered"] < payload["total"]

    def test_workload_requires_active_session(self):
        with pytest.raises(RuntimeError, match="active"):
            coverage.run_coverage_workload(litmus=False)


class TestPayload:
    def _snapshot(self, **counters):
        registry = MetricsRegistry()
        for name, value in counters.items():
            registry.inc(name.replace("__", "."), value)
        return registry.snapshot()

    def test_rule_counters_extraction(self):
        snapshot = self._snapshot(**{"rule.psna.thread.read": 3,
                                     "psna.explore.states": 9})
        assert coverage.rule_counters(snapshot) == {"psna.thread.read": 3}

    def test_payload_counts_and_uncovered(self):
        snapshot = self._snapshot(**{"rule.psna.thread.read": 2})
        payload = coverage.coverage_payload(snapshot)
        by_id = {row["id"]: row for row in payload["rules"]}
        assert by_id["psna.thread.read"]["count"] == 2
        assert "psna.thread.write" in payload["uncovered"]
        assert payload["covered"] == 1

    def test_unknown_rule_counter_reported(self):
        snapshot = self._snapshot(**{"rule.no.such.rule": 1})
        payload = coverage.coverage_payload(snapshot)
        assert payload["unknown_rules"] == ["no.such.rule"]

    def test_validate_accepts_own_payload(self):
        payload = coverage.coverage_payload(self._snapshot())
        assert coverage.validate_coverage_payload(payload) == []

    def test_validate_rejects_bad_schema(self):
        payload = coverage.coverage_payload(self._snapshot())
        payload["schema"] = "nope/9"
        assert any("schema" in problem for problem in
                   coverage.validate_coverage_payload(payload))

    def test_validate_rejects_inconsistent_uncovered(self):
        payload = coverage.coverage_payload(self._snapshot())
        payload["uncovered"] = []
        assert any("uncovered" in problem for problem in
                   coverage.validate_coverage_payload(payload))

    def test_render_table_is_loud_about_gaps(self):
        payload = coverage.coverage_payload(
            self._snapshot(**{"rule.psna.thread.read": 5}))
        table = coverage.render_coverage_table(payload)
        assert "NEVER FIRED" in table
        assert "psna.thread.write" in table
        assert "[psna-thread]" in table

    def test_render_table_clean_when_complete(self):
        registry = MetricsRegistry()
        for rule in coverage.ALL_RULES:
            registry.inc(coverage.RULE_PREFIX + rule.id)
        table = coverage.render_coverage_table(
            coverage.coverage_payload(registry.snapshot()))
        assert "NEVER" not in table
        assert "all rules fired" in table

    def test_write_report_validates_through_dispatcher(self, tmp_path):
        path = str(tmp_path / "coverage.json")
        coverage.write_coverage_report(path, self._snapshot())
        assert validate_report_file(path) == []
        payload = json.loads(open(path).read())
        assert payload["schema"] == coverage.COVERAGE_SCHEMA


class TestCollector:
    def test_sessions_merge_into_collector(self):
        collector = MetricsRegistry()
        previous = obs.collect_into(collector)
        try:
            with obs.session():
                obs.inc("rule.psna.thread.read", 2)
            with obs.session():
                obs.inc("rule.psna.thread.read", 3)
        finally:
            obs.collect_into(previous)
        assert collector.counters["rule.psna.thread.read"] == 5

    def test_uninstall_restores_previous(self):
        collector = MetricsRegistry()
        previous = obs.collect_into(collector)
        assert obs.collect_into(previous) is collector
        with obs.session():
            obs.inc("rule.psna.thread.read")
        assert collector.counters == {}


class TestPytestPlugin:
    def test_plugin_collects_and_writes_report(self, tmp_path, monkeypatch):
        from repro.obs import pytest_plugin as plugin

        path = tmp_path / "rules.json"
        monkeypatch.setenv("REPRO_COVERAGE", str(path))
        # The suite itself may be running under this very plugin; driving
        # the hooks must not clobber the outer run's state.
        saved = (plugin._REGISTRY, plugin._PREVIOUS)
        plugin.pytest_configure(config=None)
        try:
            with obs.session():
                obs.inc("rule.psna.thread.read")
            lines = []

            class Reporter:
                def write_line(self, line):
                    lines.append(line)

            plugin.pytest_terminal_summary(Reporter(), exitstatus=0,
                                           config=None)
        finally:
            plugin.pytest_unconfigure(config=None)
            plugin._REGISTRY, plugin._PREVIOUS = saved
        payload = json.loads(path.read_text())
        assert payload["schema"] == coverage.COVERAGE_SCHEMA
        assert any("rule coverage" in line for line in lines)
        assert any("NEVER FIRED" in line for line in lines)
        assert not obs.enabled()


class TestCoverageCli:
    def test_cli_full_litmus_coverage(self, capsys, tmp_path):
        """Acceptance: `repro coverage --litmus` covers every rule."""
        path = str(tmp_path / "coverage.json")
        assert main(["coverage", "--litmus", "--extended",
                     "--json", path]) == 0
        out = capsys.readouterr().out
        assert "all rules fired" in out
        payload = json.loads(open(path).read())
        assert payload["uncovered"] == []
        assert validate_report_file(path) == []

    def test_cli_strict_fails_on_gaps(self, capsys):
        assert main(["coverage", "--strict"]) == 1
        captured = capsys.readouterr()
        assert "NEVER FIRED" in captured.out
        assert "never fired" in captured.err

    def test_cli_gaps_not_fatal_without_strict(self, capsys):
        assert main(["coverage"]) == 0
        assert "NEVER FIRED" in capsys.readouterr().out
