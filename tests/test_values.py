"""Tests for the value domain with undef (§2, "Values")."""

import pickle

from hypothesis import given
from hypothesis import strategies as st

from repro.lang.values import (
    UNDEF,
    freeze_choices,
    is_defined,
    is_undef,
    map_leq,
    value_leq,
    value_lub_defined,
    _Undef,
)

values = st.one_of(st.integers(-8, 8), st.just(UNDEF))


def test_undef_singleton():
    assert _Undef() is UNDEF
    assert _Undef() == UNDEF
    assert hash(_Undef()) == hash(UNDEF)


def test_undef_pickle_roundtrip():
    assert pickle.loads(pickle.dumps(UNDEF)) is UNDEF


def test_undef_repr():
    assert repr(UNDEF) == "undef"


def test_is_undef_is_defined():
    assert is_undef(UNDEF)
    assert not is_undef(0)
    assert is_defined(3)
    assert not is_defined(UNDEF)


def test_undef_not_equal_to_ints():
    assert UNDEF != 0
    assert UNDEF != 1


def test_value_leq_basic():
    assert value_leq(1, 1)
    assert value_leq(1, UNDEF)  # source undef matches any target
    assert value_leq(UNDEF, UNDEF)
    assert not value_leq(UNDEF, 1)  # target undef not matched by defined
    assert not value_leq(1, 2)


@given(values)
def test_value_leq_reflexive(v):
    assert value_leq(v, v)


@given(values, values, values)
def test_value_leq_transitive(a, b, c):
    if value_leq(a, b) and value_leq(b, c):
        assert value_leq(a, c)


@given(values, values)
def test_value_leq_antisymmetric(a, b):
    if value_leq(a, b) and value_leq(b, a):
        assert a == b


@given(values)
def test_undef_is_top(v):
    assert value_leq(v, UNDEF)


def test_map_leq():
    assert map_leq({"x": 1}, {"x": UNDEF})
    assert not map_leq({"x": UNDEF}, {"x": 1})
    assert map_leq({"x": 1, "y": 2}, {"x": 1, "y": 2})
    assert not map_leq({"x": 1}, {"x": 1, "y": 2})  # mismatched domains


def test_value_lub_defined():
    assert value_lub_defined(5) == 5
    assert value_lub_defined(UNDEF) == 0
    assert value_lub_defined(UNDEF, fallback=7) == 7


def test_freeze_choices():
    assert freeze_choices(3, (0, 1)) == (3,)
    assert freeze_choices(UNDEF, (0, 1)) == (0, 1)
