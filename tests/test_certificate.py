"""Tests for refinement certificates (proof-object analogue)."""

import pytest

from repro.lang import parse
from repro.litmus import SEC2_CASES, case_by_name
from repro.seq.certificate import (
    Certificate,
    CertificateError,
    produce_certificate,
    verify_certificate,
)


def roundtrip(name):
    case = case_by_name(name)
    certificate = produce_certificate(case.source, case.target)
    assert certificate is not None, f"{name} should certify"
    assert verify_certificate(certificate, case.source, case.target)
    return certificate


class TestProduceAndVerify:
    @pytest.mark.parametrize("name", [
        "slf-basic", "na-reorder-diff-loc", "overwritten-store-elim",
        "unused-load-intro", "slf-across-acq-read", "slf-across-rel-write",
        "na-write-then-acq", "read-across-infinite-loop",
    ])
    def test_simple_valid_cases_certify(self, name):
        certificate = roundtrip(name)
        assert len(certificate) > 0

    def test_invalid_case_has_no_certificate(self):
        case = case_by_name("na-reorder-same-loc")
        assert produce_certificate(case.source, case.target) is None

    def test_advanced_only_case_has_no_simple_certificate(self):
        case = case_by_name("rel-then-na-write")
        assert produce_certificate(case.source, case.target) is None


class TestTamperDetection:
    def certificate_for(self, name):
        case = case_by_name(name)
        cert = produce_certificate(case.source, case.target)
        assert cert is not None
        return case, cert

    def test_dropping_a_pair_is_detected(self):
        case, cert = self.certificate_for("slf-basic")
        # drop a non-initial pair: the relation is no longer step-closed
        for victim in sorted(cert.pairs, key=repr):
            pruned = Certificate(cert.universe,
                                 cert.pairs - {victim})
            try:
                verify_certificate(pruned, case.source, case.target)
            except CertificateError:
                return  # detected
        pytest.fail("no pruning was detected")

    def test_empty_certificate_rejected(self):
        case, cert = self.certificate_for("slf-basic")
        empty = Certificate(cert.universe, frozenset())
        with pytest.raises(CertificateError, match="initial pair"):
            verify_certificate(empty, case.source, case.target)

    def test_certificate_for_wrong_program_rejected(self):
        case, cert = self.certificate_for("slf-basic")
        other = parse("x_na := 2; b := x_na; return b;")
        with pytest.raises(CertificateError):
            verify_certificate(cert, other, case.target)

    def test_frontier_swap_detected(self):
        """Replacing a frontier with an unrelated one breaks closure."""
        case, cert = self.certificate_for("slf-basic")
        pairs = sorted(cert.pairs, key=repr)
        tampered = set(cert.pairs)
        # give the first pair the (wrong) frontier of the last one
        (tgt_a, _front_a), (_tgt_b, front_b) = pairs[0], pairs[-1]
        if _front_a == front_b:
            pytest.skip("frontiers happen to coincide")
        tampered.discard(pairs[0])
        tampered.add((tgt_a, front_b))
        with pytest.raises(CertificateError):
            verify_certificate(Certificate(cert.universe,
                                           frozenset(tampered)),
                               case.source, case.target)


def test_certificates_for_all_simple_sec2_cases():
    """Every §2 case the simple notion validates also certifies."""
    for case in SEC2_CASES:
        if case.expected != "simple":
            continue
        certificate = produce_certificate(case.source, case.target)
        assert certificate is not None, case.name
        assert verify_certificate(certificate, case.source, case.target), \
            case.name
