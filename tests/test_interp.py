"""Tests for the WHILE interpreter (program-as-LTS reading)."""

import pytest

from repro.lang import (
    ACQ,
    NA,
    RLX,
    UNDEF,
    ChooseAction,
    Crashed,
    Done,
    FailAction,
    FenceAction,
    FenceKind,
    ReadAction,
    RetAction,
    RmwAction,
    SyscallAction,
    TauAction,
    WhileThread,
    WriteAction,
    parse,
)
from repro.lang.itree import FetchAddOp, locations_of


def drive(source, answers=()):
    """Run a program feeding ``answers`` to read/choose actions."""
    thread = WhileThread.start(parse(source))
    answers = list(answers)
    for _ in range(10_000):
        action = thread.peek()
        if isinstance(action, (RetAction,)):
            return action.value
        if thread.is_error():
            return "UB"
        if isinstance(action, (ReadAction, ChooseAction, RmwAction)):
            thread = thread.resume(answers.pop(0))
        else:
            thread = thread.resume(None)
    raise AssertionError("did not terminate")


def test_empty_program_returns_zero():
    assert drive("skip;") == 0


def test_return_expression():
    assert drive("a := 2; b := a * 3; return b + 1;") == 7


def test_load_gets_answer():
    assert drive("a := x_na; return a;", [42]) == 42


def test_store_presents_value():
    thread = WhileThread.start(parse("a := 5; x_rel := a + 1;"))
    thread = thread.resume(None)  # assign
    action = thread.peek()
    assert action == WriteAction("x", __import__(
        "repro.lang", fromlist=["REL"]).REL, 6)


def test_if_branches():
    assert drive("if a == 0 { return 1; } else { return 2; }") == 1
    assert drive("a := 3; if a == 0 { return 1; } else { return 2; }") == 2


def test_while_loops():
    assert drive("a := 0; while a < 5 { a := a + 1; } return a;") == 5


def test_nested_loops():
    src = """
    total := 0; i := 0;
    while i < 3 { j := 0; while j < 4 { total := total + 1; j := j + 1; }
                  i := i + 1; }
    return total;
    """
    assert drive(src) == 12


def test_division_by_zero_fails():
    assert drive("a := 1 / 0; return a;") == "UB"


def test_branch_on_undef_fails():
    assert drive("a := x_na; if a { skip; } return 0;", [UNDEF]) == "UB"


def test_abort_is_fail_action():
    thread = WhileThread.start(parse("abort;"))
    assert isinstance(thread.peek(), FailAction)
    assert isinstance(thread.resume(None), Crashed)


def test_freeze_defined_is_silent():
    thread = WhileThread.start(parse("a := 1; b := freeze(a); return b;"))
    thread = thread.resume(None)
    assert isinstance(thread.peek(), TauAction)
    thread = thread.resume(None)
    thread = thread.resume(None)
    assert thread.return_value() == 1


def test_freeze_undef_chooses():
    assert drive("a := x_na; b := freeze(a); return b;", [UNDEF, 7]) == 7


def test_freeze_result_branches_safely():
    assert drive("a := x_na; b := freeze(a); if b { return 1; } return 0;",
                 [UNDEF, 1]) == 1


def test_fence_action():
    thread = WhileThread.start(parse("fence_acq;"))
    assert thread.peek() == FenceAction(FenceKind.ACQ)


def test_rmw_action_and_result():
    thread = WhileThread.start(parse("a := fadd_rlx_rlx(x_rlx, 2); return a;"))
    action = thread.peek()
    assert isinstance(action, RmwAction)
    assert action.op == FetchAddOp(2)
    assert action.op.apply(5) == 7
    assert drive("a := fadd_rlx_rlx(x_rlx, 2); return a;", [5]) == 5


def test_print_is_syscall():
    thread = WhileThread.start(parse("print(3);"))
    assert thread.peek() == SyscallAction("print", 3)


def test_store_of_undef_value_allowed():
    # Storing a (possibly racy) read result is legal; only *branching*
    # on undef is UB.
    assert drive("a := x_na; y_na := a; return 0;", [UNDEF]) == 0


def test_states_are_hashable_and_memoizable():
    thread1 = WhileThread.start(parse("a := 1; return a;"))
    thread2 = WhileThread.start(parse("a := 1; return a;"))
    assert thread1 == thread2
    assert hash(thread1) == hash(thread2)
    assert thread1.resume(None) == thread2.resume(None)


def test_resume_after_return_raises():
    thread = Done(3)
    with pytest.raises(ValueError):
        thread.resume(None)


def test_locations_of_probe():
    thread = WhileThread.start(parse(
        "a := x_na; if a == 0 { y_na := 1; } else { z_rlx := 2; } return 0;"))
    locs = locations_of(thread, value_probe=(0, 1))
    assert locs == frozenset({"x", "y", "z"})


def test_undef_arith_then_branch_is_ub():
    assert drive("a := x_na; b := a + 1; if b == 2 { skip; } return 0;",
                 [UNDEF]) == "UB"
