"""Property-based tests of SEQ machine invariants (Fig 1).

Random programs are driven through ``seq_steps`` and the structural
invariants of the permission machine are checked on every transition.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import UNDEF
from repro.litmus.generator import GeneratorConfig, ProgramGenerator
from repro.seq import SeqConfig, SeqUniverse, seq_steps
from repro.seq.labels import (
    AcqFenceLabel,
    AcqReadLabel,
    RelFenceLabel,
    RelWriteLabel,
)

CONFIG = GeneratorConfig(na_locs=("x", "w"), atomic_locs=("y",),
                         registers=("a", "b"), values=(0, 1))
UNIVERSE = SeqUniverse(("x", "w"), (0, 1))


def explore_transitions(seed, max_transitions=600):
    """Yield (config, label, successor) triples for a random program."""
    program = ProgramGenerator(CONFIG, seed).program(length=5)
    initial = SeqConfig.initial(program, {"x"}, {"x": 0, "w": 0})
    seen = {initial}
    stack = [initial]
    count = 0
    while stack and count < max_transitions:
        cfg = stack.pop()
        if cfg.is_bottom() or cfg.is_terminated():
            continue
        for label, successor in seq_steps(cfg, UNIVERSE):
            count += 1
            yield cfg, label, successor
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_permissions_change_only_on_sync_labels(seed):
    for cfg, label, successor in explore_transitions(seed):
        if cfg.perms != successor.perms:
            assert isinstance(label, (AcqReadLabel, RelWriteLabel,
                                      AcqFenceLabel, RelFenceLabel)), label


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_written_set_resets_only_on_release(seed):
    for cfg, label, successor in explore_transitions(seed):
        if not (successor.written >= cfg.written):
            assert isinstance(label, (RelWriteLabel, RelFenceLabel))
            assert successor.written == frozenset()


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_written_set_grows_only_unlabeled(seed):
    # F grows exactly on (unlabeled) non-atomic writes
    for cfg, label, successor in explore_transitions(seed):
        if successor.written > cfg.written:
            assert label is None


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_memory_changes_imply_na_write_or_acquire(seed):
    for cfg, label, successor in explore_transitions(seed):
        if cfg.memory != successor.memory:
            if label is None:
                # a non-atomic write: exactly one location changed, to a
                # location in the permission set, and F gained it
                changed = [loc for loc in cfg.memory
                           if cfg.memory[loc] != successor.memory[loc]]
                assert len(changed) == 1
                assert changed[0] in cfg.perms
                assert changed[0] in successor.written
            else:
                assert isinstance(label, (AcqReadLabel, AcqFenceLabel))
                for loc in cfg.memory:
                    if cfg.memory[loc] != successor.memory[loc]:
                        assert loc in label.perms_after - label.perms_before


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_acquire_labels_wellformed(seed):
    for cfg, label, successor in explore_transitions(seed):
        if isinstance(label, (AcqReadLabel, AcqFenceLabel)):
            assert label.perms_before <= label.perms_after
            assert set(label.gained.keys()) == set(
                label.perms_after - label.perms_before)
            assert label.written == cfg.written == successor.written
        if isinstance(label, (RelWriteLabel, RelFenceLabel)):
            assert label.perms_after <= label.perms_before
            assert label.written == cfg.written
            assert set(label.released.keys()) == set(cfg.perms)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_racy_na_write_goes_to_bottom(seed):
    for cfg, label, successor in explore_transitions(seed):
        if successor.is_bottom() and label is None:
            # either program-level UB or a racy na write; in both cases
            # the memory and flags are untouched
            assert successor.memory == cfg.memory
            assert successor.written == cfg.written
