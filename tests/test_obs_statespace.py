"""State-space graph telemetry: ``repro-graph/1``."""

import json

from repro.cli import main
from repro.obs.report import validate_report_file
from repro.obs.statespace import (
    GRAPH_SCHEMA,
    MAX_CURVE_POINTS,
    GraphBuilder,
    GraphRecorder,
    dedup_ratio,
    graph_payload,
    merge_stats,
    render_graph_table,
    validate_graph_payload,
    write_graph_report,
)

SB = ["x_rlx := 1; a := y_rlx; return a;",
      "y_rlx := 1; b := x_rlx; return b;"]


class TestGraphBuilder:
    def test_node_interning_counts_dedup(self):
        builder = GraphBuilder("g")
        first, new = builder.node("A", 0)
        assert new and first == 0
        second, new = builder.node("B", 1)
        assert new and second == 1
        again, new = builder.node("A", 5)
        assert not new and again == 0
        assert builder.dedup_hits == 1 and builder.dedup_misses == 2
        # the repeat at depth 5 is not a new node, so depth stays 1
        assert builder.depth_max == 1

    def test_node_id_does_not_count_a_hit(self):
        builder = GraphBuilder("g")
        builder.node("A", 0)
        assert builder.node_id("A") == 0
        assert builder.dedup_hits == 0
        # unseen keys are interned silently too
        assert builder.node_id("B", 2) == 1
        assert builder.dedup_hits == 0 and builder.dedup_misses == 2

    def test_edges_feed_rules_and_branching(self):
        builder = GraphBuilder("g")
        src, _ = builder.node("A", 0)
        dst, _ = builder.node("B", 1)
        builder.edge(src, dst, "rule.demo.step")
        builder.edge(src, dst, "rule.demo.step")
        builder.edge(dst, src, "rule.demo.back")
        stats = builder.stats()
        assert stats["edges"] == 3
        assert stats["rules"] == {"rule.demo.step": 2, "rule.demo.back": 1}
        assert stats["branching_hist"] == {"2": 1, "1": 1}

    def test_marks_count_and_label_elements(self):
        builder = GraphBuilder("g")
        node, _ = builder.node("A", 0)
        builder.mark(node, "terminal", label="ret 0")
        stats = builder.stats()
        assert stats["terminal_states"] == 1
        elements = builder.elements()
        assert elements["nodes"][0]["flags"] == "terminal"
        assert elements["nodes"][0]["label"] == "ret 0"

    def test_element_budget_truncates_but_counts_stay_exact(self):
        builder = GraphBuilder("g", element_budget=4)
        for index in range(10):
            builder.node(index, index)
        stats = builder.stats()
        assert stats["states"] == 10
        elements = builder.elements()
        assert elements["truncated"] is True
        assert len(elements["nodes"]) <= 4

    def test_frontier_curve_decimates_deterministically(self):
        builder = GraphBuilder("g")
        for size in range(2000):
            builder.frontier(size)
        assert builder.peak_frontier == 1999
        assert builder.curve_stride > 1
        assert len(builder.curve) <= MAX_CURVE_POINTS + 1

    def test_stats_validate_as_payload(self):
        builder = GraphBuilder("g")
        builder.node("A", 0)
        payload = {"schema": GRAPH_SCHEMA, "graphs": {"g": builder.stats()}}
        assert validate_graph_payload(payload) == []


class TestMergeStats:
    def _stats(self, states, rule_count):
        builder = GraphBuilder("g")
        for index in range(states):
            builder.node(index, index)
        builder.edge(0, 1, "rule.demo.step")
        builder.rules["rule.demo.step"] = rule_count
        return builder.stats()

    def test_merge_is_commutative(self):
        one, two = self._stats(3, 1), self._stats(5, 4)
        forward, backward = {}, {}
        merge_stats(forward, one)
        merge_stats(forward, two)
        merge_stats(backward, two)
        merge_stats(backward, one)
        assert forward == backward
        assert forward["states"] == 8 and forward["instances"] == 2
        assert forward["rules"]["rule.demo.step"] == 5

    def test_multi_instance_drops_the_curve(self):
        builder = GraphBuilder("g")
        builder.node("A", 0)
        builder.frontier(3)
        stats = builder.stats()
        aggregate = {}
        merge_stats(aggregate, stats)
        assert aggregate["frontier_curve"] == [3]
        merge_stats(aggregate, stats)
        assert aggregate["frontier_curve"] == []

    def test_dedup_ratio(self):
        assert dedup_ratio({"dedup_hits": 3, "dedup_misses": 1}) == 0.75
        assert dedup_ratio({}) == 0.0


class TestGraphRecorder:
    def test_builders_aggregate_by_name(self):
        recorder = GraphRecorder()
        for _ in range(2):
            builder = recorder.builder("seq.game")
            builder.node("init", 0)
        graphs = recorder.graphs()
        assert graphs["seq.game"]["instances"] == 2
        assert graphs["seq.game"]["states"] == 2

    def test_elements_kept_for_first_run_only(self):
        recorder = GraphRecorder()
        first = recorder.builder("g")
        first.node("A", 0)
        first.mark(0, "terminal")
        second = recorder.builder("g")
        second.node("B", 0)
        elements = recorder.elements("g")
        assert elements["nodes"][0]["flags"] == "terminal"

    def test_snapshot_merge_matches_single_recorder(self):
        """The worker handoff: merging snapshots in order must equal
        recording everything in one process."""
        def build(recorder):
            builder = recorder.builder("g")
            builder.node("A", 0)
            builder.node("B", 1)
            builder.edge(0, 1, "rule.demo.step")

        whole = GraphRecorder()
        build(whole)
        build(whole)

        parent, worker = GraphRecorder(), GraphRecorder()
        build(parent)
        build(worker)
        parent.merge_snapshot(worker.snapshot())
        assert parent.graphs() == whole.graphs()


class TestGraphReport:
    def test_write_report_round_trips_and_validates(self, tmp_path):
        recorder = GraphRecorder()
        builder = recorder.builder("g")
        builder.node("A", 0)
        builder.node("B", 1)
        builder.edge(0, 1, "rule.demo.step")
        builder.mark(1, "terminal")
        path = str(tmp_path / "graph.json")
        written = write_graph_report(path, recorder, meta={"command": "t"})
        assert validate_report_file(path) == []
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded == json.loads(json.dumps(written))
        assert loaded["graphs"]["g"]["elements"]["nodes"][1]["flags"] \
            == "terminal"

    def test_invalid_payload_is_rejected(self):
        assert validate_graph_payload({"schema": "nope/1"})
        broken = {"schema": GRAPH_SCHEMA, "graphs": {"g": {"states": -1}}}
        assert any("states" in problem
                   for problem in validate_graph_payload(broken))

    def test_render_table_flags_truncated_runs(self):
        payload = {"schema": GRAPH_SCHEMA, "graphs": {
            "g": {"instances": 1, "states": 10, "edges": 12,
                  "dedup_hits": 5, "dedup_misses": 10, "truncations": 2,
                  "depth_max": 4, "peak_frontier": 6}}}
        table = render_graph_table(payload)
        assert "g" in table and "33.3%" in table
        assert "lower bounds" in table


class TestExploreIntegration:
    def test_explore_graph_report_matches_printed_states(self, tmp_path,
                                                         capsys):
        path = str(tmp_path / "graph.json")
        assert main(["explore", "--machine", "pf", "--graph", path,
                     *SB]) == 0
        captured = capsys.readouterr()
        printed = int(captured.out.split("states explored: ")[1]
                      .split(",")[0])
        assert validate_report_file(path) == []
        with open(path) as handle:
            payload = json.load(handle)
        stats = payload["graphs"]["psna.explore"]
        assert stats["states"] == printed
        assert stats["edges"] > 0
        assert all(rule.startswith("rule.psna.")
                   for rule in stats["rules"])
        assert stats["elements"]["nodes"][0]["depth"] == 0


def test_litmus_graph_stats_identical_across_jobs(capsys):
    """Acceptance: `--jobs 4 --graph-stats` prints byte-identical
    stdout (per-case graph columns + aggregate table) to `--jobs 1`."""
    def run(jobs):
        assert main(["litmus", "--graph-stats", "--jobs", jobs]) == 0
        return capsys.readouterr().out

    serial = run("1")
    assert "state-space graphs" in serial
    assert "seq.game" in serial
    assert run("4") == serial
