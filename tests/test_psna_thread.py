"""Tests for the PS^na thread configuration steps (Fig 5)."""

from fractions import Fraction

from repro.lang import UNDEF, parse
from repro.lang.interp import WhileThread
from repro.psna import (
    Memory,
    Message,
    NAMessage,
    PsConfig,
    ThreadLts,
    View,
    is_racy,
    thread_steps,
)

CFG = PsConfig(values=(0, 1), allow_promises=False)


def thread_for(source, **kwargs):
    return ThreadLts(program=WhileThread.start(parse(source)), **kwargs)


def steps_of(source, memory, config=CFG, **kwargs):
    return list(thread_steps(thread_for(source, **kwargs), memory, config))


class TestReads:
    def test_read_any_message_at_or_above_view(self):
        memory = Memory.initial(["x"]).add(
            Message("x", Fraction(1), 7, None))
        reads = [s for s in steps_of("a := x_rlx; return a;", memory)
                 if s.tag == "read"]
        assert len(reads) == 2  # init 0 and the new 7

    def test_read_below_view_forbidden(self):
        memory = Memory.initial(["x"]).add(
            Message("x", Fraction(1), 7, None))
        reads = [s for s in steps_of(
            "a := x_rlx; return a;", memory,
            view=View.singleton("x", Fraction(1))) if s.tag == "read"]
        assert len(reads) == 1
        assert reads[0].thread.view.get("x") == 1

    def test_acquire_read_joins_message_view(self):
        msg_view = View.of({"x": Fraction(1), "y": Fraction(2)})
        memory = Memory.initial(["x", "y"]).add(
            Message("x", Fraction(1), 1, msg_view))
        reads = [s for s in steps_of("a := x_acq; return a;", memory)
                 if s.tag == "read" and s.thread.view.get("x") == 1]
        (step,) = reads
        assert step.thread.view.get("y") == 2

    def test_relaxed_read_defers_message_view(self):
        msg_view = View.of({"y": Fraction(2)})
        memory = Memory.initial(["x", "y"]).add(
            Message("x", Fraction(1), 1, msg_view))
        reads = [s for s in steps_of("a := x_rlx; return a;", memory)
                 if s.tag == "read" and s.thread.view.get("x") == 1]
        (step,) = reads
        assert step.thread.view.get("y") == 0  # not yet acquired
        assert step.thread.acq_pending.get("y") == 2  # pending for a fence

    def test_racy_na_read_returns_undef(self):
        memory = Memory.initial(["x"]).add(
            Message("x", Fraction(1), 7, None))
        racy = [s for s in steps_of("a := x_na; return a;", memory)
                if s.tag == "racy-read"]
        (step,) = racy
        # view unchanged; register got undef
        assert step.thread.view.get("x") == 0

    def test_atomic_read_races_only_with_na_messages(self):
        plain = Memory.initial(["x"]).add(Message("x", Fraction(1), 7, None))
        assert not any(s.tag == "racy-read"
                       for s in steps_of("a := x_rlx; return a;", plain))
        marked = plain.add(NAMessage("x", Fraction(2)))
        assert any(s.tag == "racy-read"
                   for s in steps_of("a := x_rlx; return a;", marked))

    def test_own_promise_does_not_race(self):
        promise = Message("x", Fraction(1), 7, None)
        memory = Memory.initial(["x"]).add(promise)
        steps = steps_of("a := x_na; return a;", memory,
                         promises=frozenset({promise}))
        assert not any(s.tag == "racy-read" for s in steps)


class TestWrites:
    def test_rlx_write_message_view_is_singleton(self):
        memory = Memory.initial(["x"])
        (step,) = [s for s in steps_of("x_rlx := 1;", memory)
                   if s.tag == "write"]
        (message,) = [m for m in step.memory.at("x") if m.ts > 0]
        assert message.view == View.singleton("x", message.ts)

    def test_rel_write_message_carries_full_view(self):
        memory = Memory.initial(["x", "y"])
        view = View.singleton("y", Fraction(0))
        steps = [s for s in steps_of("x_rel := 1;", memory,
                                     view=View.of({"y": Fraction(3)}))
                 if s.tag == "write"]
        # y is in the thread view but has no message at ts 3 — this is an
        # artificial view; the message view must include it.
        (step,) = steps
        (message,) = [m for m in step.memory.at("x") if m.ts > 0]
        assert message.view.get("y") == 3
        assert message.view.get("x") == message.ts

    def test_na_write_message_has_bottom_view(self):
        memory = Memory.initial(["x"])
        writes = [s for s in steps_of("x_na := 1;", memory)
                  if s.tag == "write"]
        for step in writes:
            (message,) = [m for m in step.memory.at("x") if m.ts > 0]
            assert message.view is None

    def test_write_updates_thread_view(self):
        memory = Memory.initial(["x"])
        for step in steps_of("x_rlx := 1;", memory):
            if step.tag == "write":
                assert step.thread.view.get("x") > 0

    def test_racy_write_is_ub(self):
        memory = Memory.initial(["x"]).add(Message("x", Fraction(1), 7, None))
        racy = [s for s in steps_of("x_na := 1;", memory)
                if s.tag == "racy-write"]
        (step,) = racy
        assert step.thread.is_bottom()
        assert step.thread.promises == frozenset()

    def test_rel_write_blocked_by_viewful_promise(self):
        promise = Message("x", Fraction(3), 1,
                          View.singleton("x", Fraction(3)))
        memory = Memory.initial(["x"]).add(promise)
        steps = steps_of("x_rel := 0;", memory,
                         promises=frozenset({promise}))
        # fresh release writes are blocked while an x-promise has a view
        assert not any(s.tag == "write" for s in steps)

    def test_rel_write_allowed_with_bottom_view_promise(self):
        promise = Message("x", Fraction(3), 1, None)
        memory = Memory.initial(["x"]).add(promise)
        steps = steps_of("x_rel := 0;", memory,
                         promises=frozenset({promise}))
        assert any(s.tag == "write" for s in steps)


class TestPromises:
    def test_fulfill_rlx_promise(self):
        promise = Message("x", Fraction(1), 1,
                          View.singleton("x", Fraction(1)))
        memory = Memory.initial(["x"]).add(promise)
        steps = steps_of("x_rlx := 1;", memory,
                         promises=frozenset({promise}))
        fulfilled = [s for s in steps if s.tag == "fulfill"]
        (step,) = fulfilled
        assert step.thread.promises == frozenset()
        assert promise in step.memory  # the message stays in memory

    def test_fulfill_requires_value_match(self):
        promise = Message("x", Fraction(1), 2,
                          View.singleton("x", Fraction(1)))
        memory = Memory.initial(["x"]).add(promise)
        steps = steps_of("x_rlx := 1;", memory,
                         promises=frozenset({promise}))
        assert not any(s.tag == "fulfill" for s in steps)

    def test_na_write_fulfills_intermediate_promises(self):
        """The multi-message na-write (memory: na-write, Appendix B)."""
        promise = Message("x", Fraction(1), 2, None)
        memory = Memory.initial(["x"]).add(promise)
        steps = steps_of("x_na := 1;", memory,
                         promises=frozenset({promise}))
        # some write places its final message above the promise and
        # fulfills it on the way
        assert any(s.thread.promises == frozenset()
                   and s.thread.view.get("x") > 1 for s in steps)

    def test_na_intermediates_disabled(self):
        promise = Message("x", Fraction(1), 2, None)
        memory = Memory.initial(["x"]).add(promise)
        config = PsConfig(values=(0, 1), allow_promises=False,
                          allow_na_intermediates=False)
        steps = steps_of("x_na := 1;", memory,
                         promises=frozenset({promise}), config=config)
        assert not any(s.thread.promises == frozenset()
                       and s.thread.view.get("x") > 1 for s in steps)

    def test_promise_step_adds_message(self):
        memory = Memory.initial(["x"])
        config = PsConfig(values=(1,), promise_budget=1)
        steps = steps_of("x_rlx := 1;", memory, config=config,
                         promise_budget=1, promise_locs=("x",))
        promises = [s for s in steps if s.tag == "promise"]
        assert promises
        for step in promises:
            (promise,) = step.thread.promises
            assert promise in step.memory
            assert step.thread.promise_budget == 0

    def test_promise_budget_exhausted(self):
        memory = Memory.initial(["x"])
        config = PsConfig(values=(1,), promise_budget=1)
        steps = steps_of("x_rlx := 1;", memory, config=config,
                         promise_budget=0, promise_locs=("x",))
        assert not any(s.tag == "promise" for s in steps)

    def test_lower_to_undef_and_bottom_view(self):
        promise = Message("x", Fraction(1), 1,
                          View.singleton("x", Fraction(1)))
        memory = Memory.initial(["x"]).add(promise)
        steps = steps_of("x_rlx := 1;", memory,
                         promises=frozenset({promise}))
        lowered = {s for s in steps if s.tag == "lower"}
        values = {next(iter(s.thread.promises)).value for s in lowered}
        views = {next(iter(s.thread.promises)).view for s in lowered}
        assert UNDEF in values
        assert None in views

    def test_fail_requires_promise_condition(self):
        promise = Message("x", Fraction(1), 1, None)
        memory = Memory.initial(["x"]).add(promise)
        # V(x) >= promise ts violates the fail premise
        blocked = steps_of("abort;", memory,
                           promises=frozenset({promise}),
                           view=View.singleton("x", Fraction(1)))
        assert not any(s.tag == "fail" for s in blocked)
        allowed = steps_of("abort;", memory, promises=frozenset({promise}))
        assert any(s.tag == "fail" for s in allowed)


class TestRmwExtension:
    def test_rmw_reads_and_writes_adjacent(self):
        memory = Memory.initial(["x"]).add(Message("x", Fraction(2), 5, None))
        steps = steps_of("a := fadd_rlx_rlx(x_rlx, 1); return a;", memory)
        rmws = [s for s in steps if s.tag == "rmw"]
        assert len(rmws) == 2  # from init 0 and from the 5 message
        for step in rmws:
            new = [m for m in step.memory.at("x")
                   if m.ts not in (Fraction(0), Fraction(2))]
            (message,) = new
            # adjacency: nothing sits between the read and the write
            stamps = step.memory.timestamps("x")
            below = max(ts for ts in stamps if ts < message.ts)
            assert below in (Fraction(0), Fraction(2))

    def test_cas_only_succeeds_on_expected(self):
        memory = Memory.initial(["x"])
        steps = steps_of("a := cas_rlx_rlx(x_rlx, 1, 2); return a;", memory)
        assert not any(s.tag == "rmw" for s in steps)
        steps = steps_of("a := cas_rlx_rlx(x_rlx, 0, 2); return a;", memory)
        assert any(s.tag == "rmw" for s in steps)


def test_is_racy_helper():
    view = View()
    memory = Memory.initial(["x"]).add(Message("x", Fraction(1), 1, None))
    assert is_racy(view, frozenset(), memory, "x", non_atomic=True)
    assert not is_racy(view, frozenset(), memory, "x", non_atomic=False)
    assert not is_racy(View.singleton("x", Fraction(1)), frozenset(), memory,
                       "x", non_atomic=True)
