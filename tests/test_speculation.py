"""Tests for the speculation passes (§1: load introduction at work)."""

import pytest

from repro.lang import parse
from repro.opt import Optimizer, ValidationError, llf_pass
from repro.opt.speculation import (
    SPECULATIVE_PASSES,
    speculative_load_hoist_pass,
    unswitch_pass,
)
from repro.seq import Limits, check_transformation

FAST = Limits(max_game_states=10_000)


def assert_valid(source_text, target):
    source = parse(source_text)
    verdict = check_transformation(source, target, limits=FAST)
    assert verdict.valid, f"unsound: {target!r}\n{verdict!r}"


class TestSpeculativeLoadHoist:
    def test_basic_hoist(self):
        source = "if c { a := x_na; } return a;"
        target = speculative_load_hoist_pass(parse(source))
        text = repr(target)
        assert text.startswith("_licm0 := x_na")
        assert "a := _licm0" in text
        assert_valid(source, target)

    def test_hoisted_load_may_be_racy(self):
        """The else-path now loads x — unsound under catch-fire, fine here."""
        source = "if c { a := x_na; } else { skip; } return 0;"
        target = speculative_load_hoist_pass(parse(source))
        assert ":= x_na" in repr(target)
        assert_valid(source, target)

    def test_else_branch_hoist(self):
        source = "if c { skip; } else { a := x_na; } return a;"
        target = speculative_load_hoist_pass(parse(source))
        assert repr(target).startswith("_licm0 := x_na")
        assert_valid(source, target)

    def test_condition_register_not_hoisted_over(self):
        # hoisting a load into the condition's register would change it
        source = "if c { c := x_na; } return c;"
        target = speculative_load_hoist_pass(parse(source))
        assert repr(target) == repr(parse(source))

    def test_atomic_load_not_hoisted(self):
        source = "if c { a := x_acq; } return a;"
        target = speculative_load_hoist_pass(parse(source))
        assert repr(target) == repr(parse(source))

    def test_combines_with_llf(self):
        source = "if c { a := x_na; } b := x_na; return a + b;"
        hoisted = speculative_load_hoist_pass(parse(source))
        forwarded = llf_pass(hoisted)
        # after hoisting, LLF forwards the second load too
        assert repr(forwarded).count(":= x_na") == 1
        assert_valid(source, forwarded)

    def test_nested_conditionals(self):
        source = "if c { if d { a := x_na; } } return a;"
        target = speculative_load_hoist_pass(parse(source))
        assert repr(target).count(":= x_na") == 1
        assert_valid(source, target)


class TestUnswitch:
    def test_basic_unswitch(self):
        source = ("i := 0; while i < 3 { if b { x_na := 1; } else "
                  "{ w_na := 1; } i := i + 1; } return 0;")
        # the counter update makes the body more than a sole conditional;
        # restructure so the branch is the whole body
        source = ("while c { if b { x_na := 1; } else { w_na := 1; } } "
                  "return 0;")
        target = unswitch_pass(parse(source))
        text = repr(target)
        assert text.startswith("if b")
        assert text.count("while") == 2

    def test_variant_condition_not_unswitched(self):
        source = "while c { if b { b := 0; } else { skip; } } return 0;"
        target = unswitch_pass(parse(source))
        assert repr(target).startswith("while")

    def test_overlapping_condition_registers_kept(self):
        source = "while b { if b { skip; } else { skip; } } return 0;"
        target = unswitch_pass(parse(source))
        assert repr(target).startswith("while")

    def test_unswitched_program_validates_on_defined_condition(self):
        source = parse(
            "b := 1; while c { if b { x_na := 1; } else { w_na := 1; } } "
            "return 0;")
        target = unswitch_pass(source)
        verdict = check_transformation(source, target, limits=FAST)
        assert verdict.valid

    def test_validator_rejects_unswitching_on_possibly_undef_condition(self):
        """Speculatively evaluating a racy-load condition is a real bug —
        and the translation validator catches it."""
        source = parse(
            "b := w_na; while c { if b { x_na := 1; } else { skip; } } "
            "return 0;")
        optimizer = Optimizer(passes=(("unswitch", unswitch_pass),),
                              validate=True, limits=FAST)
        with pytest.raises(ValidationError):
            optimizer.optimize(source)


def test_speculative_pipeline_validates_on_safe_programs():
    source = parse(
        "if c { a := x_na; } "
        "d := 1; while e { if d { w_na := 1; } else { skip; } } return a;")
    optimizer = Optimizer(passes=SPECULATIVE_PASSES, validate=True,
                          limits=FAST)
    result = optimizer.optimize(source)
    assert result.validated
