"""Perf-regression diffing of repro-bench/1 reports."""

import json

from repro.obs import diff
from repro.obs.__main__ import main as obs_main
from repro.obs.report import bench_payload


def _entry(name, min_s, **extra):
    return {"name": name, "rounds": 3, "min_s": min_s,
            "mean_s": min_s * 1.1, "max_s": min_s * 1.3, **extra}


def _payload(*entries):
    return bench_payload("demo", list(entries))


def _write(tmp_path, filename, payload):
    path = tmp_path / filename
    path.write_text(json.dumps(payload))
    return str(path)


class TestDiffPayloads:
    def test_identical_is_ok(self):
        payload = _payload(_entry("a", 0.5), _entry("b", 0.1))
        result = diff.diff_bench_payloads(payload, payload)
        assert result.ok
        assert {e.status for e in result.entries} == {diff.OK}

    def test_double_slowdown_regresses(self):
        old = _payload(_entry("a", 0.5))
        new = _payload(_entry("a", 1.0))
        result = diff.diff_bench_payloads(old, new)
        assert not result.ok
        entry = result.entries[0]
        assert entry.status == diff.REGRESSION
        assert entry.ratio == 2.0

    def test_tolerance_is_respected(self):
        old = _payload(_entry("a", 1.0))
        new = _payload(_entry("a", 1.5))
        assert not diff.diff_bench_payloads(old, new, tolerance=0.25).ok
        assert diff.diff_bench_payloads(old, new, tolerance=1.0).ok

    def test_improvement_reported_not_fatal(self):
        old = _payload(_entry("a", 1.0))
        new = _payload(_entry("a", 0.3))
        result = diff.diff_bench_payloads(old, new)
        assert result.ok
        assert result.entries[0].status == diff.IMPROVED

    def test_added_and_removed_never_fail(self):
        old = _payload(_entry("gone", 1.0), _entry("kept", 1.0))
        new = _payload(_entry("kept", 1.0), _entry("fresh", 9.0))
        result = diff.diff_bench_payloads(old, new)
        assert result.ok
        statuses = {e.name: e.status for e in result.entries}
        assert statuses == {"gone": diff.REMOVED, "kept": diff.OK,
                            "fresh": diff.ADDED}

    def test_render_table_is_loud(self):
        old = _payload(_entry("slow", 0.5))
        new = _payload(_entry("slow", 2.0))
        table = diff.render_diff_table(diff.diff_bench_payloads(old, new))
        assert "REGRESSION" in table
        assert "4.00x" in table
        assert "!!" in table


class TestDiffCli:
    def test_identical_files_exit_zero(self, tmp_path, capsys):
        payload = _payload(_entry("a", 0.5))
        old = _write(tmp_path, "old.json", payload)
        new = _write(tmp_path, "new.json", payload)
        assert diff.main([old, new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        """Acceptance: non-zero exit on an injected 2x slowdown."""
        old = _write(tmp_path, "old.json", _payload(_entry("a", 0.5)))
        new = _write(tmp_path, "new.json", _payload(_entry("a", 1.0)))
        assert diff.main([old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path):
        old = _write(tmp_path, "old.json", _payload(_entry("a", 1.0)))
        new = _write(tmp_path, "new.json", _payload(_entry("a", 1.5)))
        assert diff.main([old, new]) == 1
        assert diff.main([old, new, "--tolerance", "1.0"]) == 0

    def test_bad_tolerance_is_usage_error(self, tmp_path, capsys):
        assert diff.main(["a.json", "b.json", "--tolerance", "soon"]) == 2
        assert "--tolerance" in capsys.readouterr().out

    def test_wrong_arity_is_usage_error(self, capsys):
        assert diff.main(["only-one.json"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unreadable_file_is_io_error(self, tmp_path, capsys):
        good = _write(tmp_path, "old.json", _payload(_entry("a", 0.5)))
        assert diff.main([good, str(tmp_path / "missing.json")]) == 2
        assert "unreadable" in capsys.readouterr().out

    def test_invalid_schema_rejected(self, tmp_path, capsys):
        good = _write(tmp_path, "old.json", _payload(_entry("a", 0.5)))
        bad = _write(tmp_path, "bad.json", {"schema": "nope/1"})
        assert diff.main([good, bad]) == 2
        assert "schema" in capsys.readouterr().out


class TestStrictDirectories:
    def _dirs(self, tmp_path, asymmetric=True):
        old = tmp_path / "old"
        new = tmp_path / "new"
        old.mkdir()
        new.mkdir()
        payload = _payload(_entry("a", 0.5))
        (old / "BENCH_shared.json").write_text(json.dumps(payload))
        (new / "BENCH_shared.json").write_text(json.dumps(payload))
        if asymmetric:
            (old / "BENCH_gone.json").write_text(json.dumps(payload))
        return str(old), str(new)

    def test_asymmetry_warns_but_passes_by_default(self, tmp_path, capsys):
        old, new = self._dirs(tmp_path)
        assert diff.main([old, new]) == 0
        assert "only in" in capsys.readouterr().out

    def test_strict_asymmetry_exits_three(self, tmp_path, capsys):
        old, new = self._dirs(tmp_path)
        assert diff.main([old, new, "--strict"]) == 3
        out = capsys.readouterr().out
        assert "--strict" in out and "BENCH_gone.json" in out

    def test_strict_symmetric_directories_pass(self, tmp_path):
        old, new = self._dirs(tmp_path, asymmetric=False)
        assert diff.main([old, new, "--strict"]) == 0

    def test_strict_still_reports_regressions_first(self, tmp_path, capsys):
        """An unreadable shared file (exit 2) outranks the asymmetry
        code per the 2 > 3 > 1 > 0 severity order."""
        old, new = self._dirs(tmp_path)
        (tmp_path / "new" / "BENCH_shared.json").write_text("not json")
        assert diff.main([old, new, "--strict"]) == 2

    def test_obs_main_passes_strict_through(self, tmp_path, capsys):
        old, new = self._dirs(tmp_path)
        assert obs_main(["diff", old, new, "--strict"]) == 3


class TestObsMain:
    def test_no_args_prints_usage_exit_2(self, capsys):
        assert obs_main([]) == 2
        out = capsys.readouterr().out
        assert "usage" in out and "diff" in out

    def test_diff_mode_dispatches(self, tmp_path, capsys):
        payload = _payload(_entry("a", 0.5))
        old = _write(tmp_path, "old.json", payload)
        new = _write(tmp_path, "new.json", payload)
        assert obs_main(["diff", old, new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_validate_mode_still_works(self, tmp_path, capsys):
        path = _write(tmp_path, "bench.json", _payload(_entry("a", 0.5)))
        assert obs_main([path]) == 0
        assert "1/1 report files valid" in capsys.readouterr().out
