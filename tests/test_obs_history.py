"""The append-only run-history ledger and its trend gate."""

import json

from repro.obs import history
from repro.obs.report import bench_payload


def _entry(name, min_s, rounds=3, extra=None):
    return {"name": name, "rounds": rounds, "min_s": min_s,
            "mean_s": min_s * 1.1, "median_s": min_s * 1.05,
            "max_s": min_s * 1.3, "extra": extra or {}}


def _ledger_with(tmp_path, series):
    """Write a ledger where ``series`` maps entry name -> min_s points."""
    path = tmp_path / "ledger.jsonl"
    for index in range(max(len(points) for points in series.values())):
        payload = bench_payload(
            "demo", [_entry(name, points[index])
                     for name, points in series.items()
                     if index < len(points)])
        history.append_records(
            str(path), history.ledger_records(payload, sha=f"c{index}",
                                              stamp="2026-08-06T00:00:00Z"))
    return str(path)


class TestLedgerRoundTrip:
    def test_append_then_read_round_trips(self, tmp_path):
        payload = bench_payload("demo", [_entry("a", 0.5), _entry("b", 0.1)])
        path = tmp_path / "ledger.jsonl"
        records = history.ledger_records(payload, sha="abc1234",
                                         stamp="2026-08-06T12:00:00Z")
        assert history.append_records(str(path), records) == 2
        loaded, problems = history.read_ledger(str(path))
        assert problems == []
        assert loaded == records
        for record in loaded:
            assert record["schema"] == history.HISTORY_SCHEMA
            assert record["git_sha"] == "abc1234"
            assert record["incomplete"] is False

    def test_append_is_append_only(self, tmp_path):
        payload = bench_payload("demo", [_entry("a", 0.5)])
        path = tmp_path / "ledger.jsonl"
        for sha in ("aaa", "bbb"):
            history.append_records(
                str(path),
                history.ledger_records(payload, sha=sha,
                                       stamp="2026-08-06T00:00:00Z"))
        loaded, _ = history.read_ledger(str(path))
        assert [record["git_sha"] for record in loaded] == ["aaa", "bbb"]

    def test_malformed_lines_skip_and_report(self, tmp_path):
        payload = bench_payload("demo", [_entry("a", 0.5)])
        path = tmp_path / "ledger.jsonl"
        history.append_records(
            str(path), history.ledger_records(payload, sha="aaa",
                                              stamp="2026-08-06T00:00:00Z"))
        with open(path, "a") as handle:
            handle.write("{truncated\n")
            handle.write(json.dumps({"schema": "wrong/9"}) + "\n")
        loaded, problems = history.read_ledger(str(path))
        assert len(loaded) == 1
        assert len(problems) == 2

    def test_digest_tracks_workload_shape(self):
        plain = _entry("a", 0.5)
        assert (history.entry_digest(plain)
                == history.entry_digest(_entry("a", 99.0)))  # timing-free
        assert (history.entry_digest(plain)
                != history.entry_digest(_entry("a", 0.5, rounds=5)))
        assert (history.entry_digest(plain)
                != history.entry_digest(_entry("a", 0.5,
                                               extra={"states": 12})))


class TestTrendMath:
    def test_flat_series_is_ok(self, tmp_path):
        path = _ledger_with(tmp_path, {"a": [0.5] * 6})
        records, _ = history.read_ledger(path)
        (trend,) = history.compute_trends(records)
        assert trend.status == "ok"
        assert trend.ratio == 1.0

    def test_sustained_slowdown_regresses(self, tmp_path):
        path = _ledger_with(tmp_path, {"a": [0.5, 0.5, 0.5, 1.0, 1.0, 1.0]})
        records, _ = history.read_ledger(path)
        (trend,) = history.compute_trends(records)
        assert trend.status == "regression"
        assert trend.ratio == 2.0

    def test_single_spike_does_not_regress(self, tmp_path):
        path = _ledger_with(tmp_path, {"a": [0.5, 0.5, 0.5, 0.5, 5.0, 0.5]})
        records, _ = history.read_ledger(path)
        (trend,) = history.compute_trends(records)
        assert trend.status == "ok"

    def test_improvement_is_reported_not_fatal(self, tmp_path):
        path = _ledger_with(tmp_path, {"a": [1.0, 1.0, 1.0, 0.2, 0.2, 0.2]})
        records, _ = history.read_ledger(path)
        (trend,) = history.compute_trends(records)
        assert trend.status == "improved"

    def test_short_series_is_na(self, tmp_path):
        path = _ledger_with(tmp_path, {"a": [0.5, 0.5, 0.5]})
        records, _ = history.read_ledger(path)
        (trend,) = history.compute_trends(records)
        assert trend.status == "n/a"
        assert trend.baseline is None

    def test_digest_change_resets_the_series(self, tmp_path):
        # Same entry name, but the workload shape changed mid-series: the
        # old points must not count as baseline for the new shape.
        path = tmp_path / "ledger.jsonl"
        for min_s, rounds in [(0.1, 3)] * 5 + [(0.9, 5)] * 3:
            payload = bench_payload("demo",
                                    [_entry("a", min_s, rounds=rounds)])
            history.append_records(
                str(path),
                history.ledger_records(payload, sha="x",
                                       stamp="2026-08-06T00:00:00Z"))
        records, _ = history.read_ledger(str(path))
        (trend,) = history.compute_trends(records)
        assert len(trend.points) == 3  # only the new-shape points
        assert trend.status == "n/a"

    def test_tolerance_is_respected(self, tmp_path):
        path = _ledger_with(tmp_path, {"a": [1.0, 1.0, 1.0, 1.2, 1.2, 1.2]})
        records, _ = history.read_ledger(path)
        (trend,) = history.compute_trends(records, tolerance=0.25)
        assert trend.status == "ok"
        (trend,) = history.compute_trends(records, tolerance=0.1)
        assert trend.status == "regression"


class TestHistoryCli:
    def _bench_file(self, tmp_path, name="BENCH_demo.json", min_s=0.5):
        payload = bench_payload("demo", [_entry("a", min_s)])
        payload["meta"] = {"git_sha": "feed1234",
                           "created_at": "2026-08-06T09:00:00Z"}
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_record_then_trend_round_trip(self, tmp_path, capsys):
        bench = self._bench_file(tmp_path)
        ledger = str(tmp_path / "ledger.jsonl")
        assert history.main(["record", bench, "--ledger", ledger]) == 0
        assert history.main(["show", "--ledger", ledger]) == 0
        assert history.main(["trend", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "recorded 1 entry" in out
        assert "feed1234"[:8] in out  # meta provenance reused

    def test_trend_exit_code_on_regression(self, tmp_path, capsys):
        ledger = _ledger_with(tmp_path,
                              {"a": [0.5, 0.5, 0.5, 2.0, 2.0, 2.0]})
        assert history.main(["trend", "--ledger", ledger]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_explicit_sha_beats_bench_meta(self, tmp_path, capsys):
        bench = self._bench_file(tmp_path)
        ledger = str(tmp_path / "ledger.jsonl")
        assert history.main(["record", bench, "--ledger", ledger,
                             "--sha", "beef5678",
                             "--created-at", "2026-08-06T10:00:00Z"]) == 0
        records, _ = history.read_ledger(ledger)
        assert records[0]["git_sha"] == "beef5678"
        assert records[0]["created_at"] == "2026-08-06T10:00:00Z"

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        assert history.main([]) == 2
        assert history.main(["frobnicate"]) == 2
        missing = str(tmp_path / "absent.jsonl")
        assert history.main(["trend", "--ledger", missing]) == 2

    def test_invalid_bench_file_exits_2(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": "wrong/1"}))
        assert history.main(["record", str(path),
                             "--ledger", str(tmp_path / "l.jsonl")]) == 2
