"""Tests for dead store elimination (Appendix D, Fig 8b)."""

from repro.lang import parse
from repro.opt import DsePass, DseToken, dse_pass
from repro.opt.dse import DseState, token_join


class TestDseTokens:
    def test_order(self):
        assert token_join(DseToken.BEFORE, DseToken.AFTER) == DseToken.AFTER
        assert token_join(DseToken.AFTER, DseToken.TOP) == DseToken.TOP
        assert token_join(DseToken.BEFORE, DseToken.BEFORE) == \
            DseToken.BEFORE


class TestBackwardAnalysis:
    def pre_state(self, source):
        pass_ = DsePass()
        return pass_.analyze(parse(source), pass_.initial())

    def test_store_marks_overwritten(self):
        assert self.pre_state("x_na := 1;").get("x") == DseToken.BEFORE

    def test_read_resets(self):
        assert self.pre_state("a := x_na; x_na := 1;").get("x") == \
            DseToken.TOP

    def test_acquire_moves_before_to_after(self):
        assert self.pre_state("l := y_acq; x_na := 1;").get("x") == \
            DseToken.AFTER

    def test_release_after_acquire_is_top(self):
        assert self.pre_state(
            "y_rel := 1; l := z_acq; x_na := 1;").get("x") == DseToken.TOP

    def test_release_alone_preserves_before(self):
        assert self.pre_state("y_rel := 1; x_na := 1;").get("x") == \
            DseToken.BEFORE

    def test_exit_state_is_top(self):
        assert self.pre_state("skip;").get("x") == DseToken.TOP


class TestDseRewrites:
    def test_basic_overwritten_store(self):
        """Example 2.6(i): x := v; x := v' {~> x := v'."""
        optimized = dse_pass(parse("x_na := 1; x_na := 2; return 0;"))
        assert repr(optimized) == "skip; x_na := 2; return 0"

    def test_last_store_kept(self):
        """The final memory is observable: never remove the last store."""
        optimized = dse_pass(parse("x_na := 1; return 0;"))
        assert "x_na := 1" in repr(optimized)

    def test_across_relaxed_accesses(self):
        optimized = dse_pass(parse(
            "x_na := 1; a := y_rlx; y_rlx := 2; x_na := 3; return 0;"))
        assert "skip" in repr(optimized)

    def test_across_acquire(self):
        """Example 3.5 with α an acquire read (token •)."""
        optimized = dse_pass(parse(
            "x_na := 1; a := y_acq; x_na := 2; return 0;"))
        assert "skip" in repr(optimized)

    def test_across_release(self):
        """Example 3.5's release case — sound via advanced refinement."""
        optimized = dse_pass(parse(
            "x_na := 1; y_rel := 1; x_na := 2; return 0;"))
        assert "skip" in repr(optimized)

    def test_blocked_by_release_acquire_pair(self):
        optimized = dse_pass(parse(
            "x_na := 1; y_rel := 1; a := z_acq; x_na := 2; return 0;"))
        assert "skip" not in repr(optimized)

    def test_blocked_by_intervening_read(self):
        optimized = dse_pass(parse(
            "x_na := 1; a := x_na; x_na := 2; return a;"))
        assert "skip" not in repr(optimized)

    def test_branches_must_both_overwrite(self):
        kept = dse_pass(parse(
            "x_na := 1; if c { x_na := 2; } return 0;"))
        assert "x_na := 1" in repr(kept)
        removed = dse_pass(parse(
            "x_na := 1; if c { x_na := 2; } else { x_na := 3; } return 0;"))
        assert "skip" in repr(removed)

    def test_store_with_possible_ub_kept(self):
        optimized = dse_pass(parse(
            "x_na := a / b; x_na := 2; return 0;"))
        assert "skip" not in repr(optimized)

    def test_loop_store_overwritten_by_next_iteration(self):
        # Every iteration's store is overwritten by the next one, but the
        # *last* iteration's store survives to the end: token must be ⊤.
        optimized = dse_pass(parse(
            "while c < 3 { x_na := c; c := c + 1; } return 0;"))
        assert "x_na := c" in repr(optimized)

    def test_return_value_not_affected(self):
        # store feeding a later read through a branch must stay
        optimized = dse_pass(parse(
            "x_na := 1; if c { a := x_na; } x_na := 2; return a;"))
        assert "x_na := 1" in repr(optimized)

    def test_fixpoint_fast(self):
        pass_ = DsePass()
        pass_.run(parse(
            "while c < 3 { x_na := c; c := c + 1; } return 0;"))
        assert pass_.stats.max_iterations <= 3
