"""Trace-sink edge cases: empty files, deep nesting, closed sinks."""

import json

import pytest

from repro import obs
from repro.obs.trace import JsonlSink, MemorySink, read_trace


class TestEmptyTraces:
    def test_empty_file_round_trips(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_trace(str(path)) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blanks.jsonl"
        path.write_text("\n\n{\"ev\": \"event\", \"name\": \"x\"}\n\n")
        assert read_trace(str(path)) == [{"ev": "event", "name": "x"}]

    def test_sink_with_no_events_leaves_readable_file(self, tmp_path):
        path = str(tmp_path / "none.jsonl")
        sink = JsonlSink(path)
        sink.close()
        assert read_trace(path) == []


class TestDeepNesting:
    @pytest.mark.parametrize("depth", [1, 10, 100])
    def test_deeply_nested_spans_record_depths(self, depth):
        sink = MemorySink()
        with obs.session(trace=sink) as session:
            spans = [obs.span(f"level.{i}") for i in range(depth)]
            for span in spans:
                span.__enter__()
            assert session.span_stack == [f"level.{i}"
                                          for i in range(depth)]
            for span in reversed(spans):
                span.__exit__(None, None, None)
            assert session.span_stack == []
        recorded = [event for event in sink.events
                    if event["ev"] == "span"]
        # spans close innermost-first
        assert [event["depth"] for event in recorded] == list(
            range(depth - 1, -1, -1))

    def test_deep_nesting_round_trips_through_jsonl(self, tmp_path):
        path = str(tmp_path / "deep.jsonl")
        with obs.session(trace=path):
            with obs.span("a"):
                with obs.span("b"):
                    with obs.span("c"):
                        obs.event("bottom")
        events = read_trace(path)
        depths = {event["name"]: event["depth"] for event in events
                  if event["ev"] == "span"}
        assert depths == {"a": 0, "b": 1, "c": 2}


class TestClosedSinks:
    def test_jsonl_emit_after_close_raises(self, tmp_path):
        path = str(tmp_path / "closed.jsonl")
        sink = JsonlSink(path)
        sink.emit({"ev": "event", "name": "before"})
        sink.close()
        with pytest.raises(RuntimeError, match="closed"):
            sink.emit({"ev": "event", "name": "after"})

    def test_failed_emit_does_not_corrupt_file(self, tmp_path):
        path = str(tmp_path / "closed.jsonl")
        sink = JsonlSink(path)
        sink.emit({"ev": "event", "name": "before"})
        sink.close()
        with pytest.raises(RuntimeError):
            sink.emit({"ev": "event", "name": "after"})
        events = read_trace(path)
        assert events == [{"ev": "event", "name": "before"}]
        # every line still parses individually (no partial writes)
        for line in open(path):
            json.loads(line)

    def test_memory_emit_after_close_raises(self):
        sink = MemorySink()
        sink.emit({"ev": "event", "name": "before"})
        sink.close()
        with pytest.raises(RuntimeError, match="closed"):
            sink.emit({"ev": "event", "name": "after"})
        assert len(sink.events) == 1

    def test_close_is_idempotent(self, tmp_path):
        path = str(tmp_path / "twice.jsonl")
        sink = JsonlSink(path)
        sink.close()
        sink.close()  # must not raise on an already-closed file
        memory = MemorySink()
        memory.close()
        memory.close()

    def test_session_close_then_manual_emit_raises(self, tmp_path):
        path = str(tmp_path / "session.jsonl")
        with obs.session(trace=path) as session:
            obs.event("inside")
        with pytest.raises(RuntimeError):
            session.sink.emit({"ev": "event", "name": "too-late"})
        names = [event.get("name") for event in read_trace(path)]
        assert "inside" in names and "too-late" not in names
