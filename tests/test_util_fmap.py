"""Tests for the FrozenMap utility."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.fmap import FrozenMap

mappings = st.dictionaries(st.sampled_from(["x", "y", "z"]),
                           st.integers(0, 5), max_size=3)


def test_of_and_getitem():
    fmap = FrozenMap.of({"b": 2, "a": 1})
    assert fmap["a"] == 1 and fmap["b"] == 2


def test_missing_key_raises():
    with pytest.raises(KeyError):
        FrozenMap()["nope"]


def test_get_default():
    assert FrozenMap().get("a", 7) == 7


def test_contains_len_iter():
    fmap = FrozenMap.of({"a": 1, "b": 2})
    assert "a" in fmap and "c" not in fmap
    assert len(fmap) == 2
    assert sorted(fmap) == ["a", "b"]


def test_set_is_persistent():
    base = FrozenMap.of({"a": 1})
    updated = base.set("a", 2).set("b", 3)
    assert base["a"] == 1
    assert updated["a"] == 2 and updated["b"] == 3


def test_update():
    fmap = FrozenMap.of({"a": 1}).update({"a": 5, "b": 2})
    assert fmap.as_dict() == {"a": 5, "b": 2}


def test_restrict():
    fmap = FrozenMap.of({"a": 1, "b": 2, "c": 3}).restrict({"a", "c"})
    assert fmap.as_dict() == {"a": 1, "c": 3}


def test_map_values():
    fmap = FrozenMap.of({"a": 1, "b": 2}).map_values(lambda v: v * 10)
    assert fmap.as_dict() == {"a": 10, "b": 20}


@given(mappings)
def test_insertion_order_irrelevant(mapping):
    forward = FrozenMap.of(mapping)
    backward = FrozenMap.of(dict(reversed(list(mapping.items()))))
    assert forward == backward
    assert hash(forward) == hash(backward)


@given(mappings, mappings)
def test_equality_matches_dict_equality(a, b):
    assert (FrozenMap.of(a) == FrozenMap.of(b)) == (a == b)


@given(mappings)
def test_as_dict_round_trip(mapping):
    assert FrozenMap.of(mapping).as_dict() == mapping
