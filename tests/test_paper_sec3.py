"""Paper examples of §3: advanced refinement, late UB, commitments."""

import pytest

from repro.litmus import SEC3_CASES, case_by_name
from repro.seq import (
    check_advanced_refinement,
    check_simple_refinement,
    check_transformation,
)


@pytest.mark.parametrize("case", SEC3_CASES, ids=lambda c: c.name)
def test_sec3_case(case):
    verdict = check_transformation(case.source, case.target)
    assert verdict.valid == case.expected_valid, (
        f"{case.name} ({case.paper_ref}): expected {case.expected}, "
        f"got {verdict!r}")
    assert verdict.notion == (case.expected if case.expected_valid
                              else "none")


@pytest.mark.parametrize(
    "name", [c.name for c in SEC3_CASES if c.expected == "advanced"])
def test_advanced_cases_fail_simple(name):
    """Proposition 3.4 is strict: these need the refined notion."""
    case = case_by_name(name)
    assert not check_simple_refinement(case.source, case.target).refines
    assert check_advanced_refinement(case.source, case.target).refines


def test_proposition_3_4_simple_implies_advanced():
    """σ_tgt ⊑ σ_src ⇒ σ_tgt ⊑w σ_src, checked on all simple-valid cases."""
    from repro.litmus import SEC2_CASES

    for case in SEC2_CASES:
        if case.expected != "simple":
            continue
        assert check_advanced_refinement(case.source, case.target).refines, \
            case.name


def test_example_3_1_first_step_blocked_by_acquire_condition():
    """Reordering acquire with UB is what breaks the Ex 3.1 chain."""
    case = case_by_name("acq-then-div-by-zero")
    verdict = check_advanced_refinement(case.source, case.target)
    assert not verdict.refines
    assert verdict.counterexample is not None


def test_late_ub_oracle_counterexample_mentions_defaults():
    """The §3 second example is only refuted by a pinning oracle."""
    case = case_by_name("late-ub-needs-oracle")
    verdict = check_advanced_refinement(case.source, case.target)
    assert not verdict.refines
    assert verdict.counterexample.defaults is not None
    # the refuting oracle forces the source to read a value != 1
    assert verdict.counterexample.defaults.read_value != 1


def test_example_3_5_release_case_has_commitments():
    case = case_by_name("dse-across-rel-write")
    assert not check_simple_refinement(case.source, case.target).refines
    assert check_advanced_refinement(case.source, case.target).refines
