"""Tests for load-to-load forwarding (Appendix D, Fig 8a)."""

from repro.lang import parse
from repro.opt import LlfPass, llf_pass
from repro.opt.llf import LlfState


class TestLlfState:
    def test_default_empty(self):
        assert LlfState().get("x") == frozenset()

    def test_kill_register(self):
        state = LlfState().set("x", frozenset({"a", "b"}))
        killed = state.kill_register("a")
        assert killed.get("x") == frozenset({"b"})

    def test_join_is_intersection(self):
        pass_ = LlfPass()
        left = LlfState().set("x", frozenset({"a", "b"}))
        right = LlfState().set("x", frozenset({"b", "c"}))
        assert pass_.join(left, right).get("x") == frozenset({"b"})

    def test_join_with_empty_is_empty(self):
        pass_ = LlfPass()
        left = LlfState().set("x", frozenset({"a"}))
        assert pass_.join(left, LlfState()).get("x") == frozenset()


class TestFig8aTransitions:
    def out_state(self, source):
        pass_ = LlfPass()
        return pass_.analyze(parse(source), pass_.initial())

    def test_load_adds_register(self):
        assert self.out_state("a := x_na;").get("x") == frozenset({"a"})

    def test_store_clears_location(self):
        state = self.out_state("a := x_na; x_na := 1;")
        assert state.get("x") == frozenset()

    def test_acquire_clears_everything(self):
        state = self.out_state("a := x_na; b := y_acq;")
        assert state.get("x") == frozenset()

    def test_relaxed_and_release_preserved(self):
        state = self.out_state("a := x_na; y_rel := 1; b := y_rlx;")
        assert state.get("x") == frozenset({"a"})

    def test_reassignment_kills(self):
        state = self.out_state("a := x_na; a := 5;")
        assert state.get("x") == frozenset()

    def test_freeze_kills(self):
        state = self.out_state("a := x_na; a := freeze(a);")
        assert state.get("x") == frozenset()


class TestLlfRewrites:
    def test_basic_forwarding(self):
        optimized = llf_pass(parse("a := x_na; b := x_na; return a + b;"))
        assert "b := a" in repr(optimized)

    def test_forwarding_across_release(self):
        optimized = llf_pass(parse(
            "a := x_na; y_rel := 1; b := x_na; return a + b;"))
        assert "b := a" in repr(optimized)

    def test_blocked_by_acquire(self):
        optimized = llf_pass(parse(
            "a := x_na; l := y_acq; b := x_na; return a + b;"))
        assert "b := x_na" in repr(optimized)

    def test_blocked_by_intervening_store(self):
        optimized = llf_pass(parse(
            "a := x_na; x_na := 9; b := x_na; return a + b;"))
        assert "b := x_na" in repr(optimized)

    def test_chained_forwarding(self):
        optimized = llf_pass(parse(
            "a := x_na; b := x_na; c := x_na; return c;"))
        text = repr(optimized)
        assert "b := a" in text and "c := a" in text

    def test_branch_join(self):
        optimized = llf_pass(parse(
            "a := x_na; if c { d := x_na; } else { skip; } b := x_na; "
            "return b;"))
        text = repr(optimized)
        assert "d := a" in text and "b := a" in text

    def test_loop_invariant_register_survives(self):
        optimized = llf_pass(parse(
            "a := x_na; while c < 2 { b := x_na; c := c + 1; } return 0;"))
        assert "b := a" in repr(optimized)

    def test_loop_with_store_kills(self):
        optimized = llf_pass(parse(
            "a := x_na; while c < 2 { b := x_na; x_na := c; c := c + 1; }"
            " return 0;"))
        assert "b := x_na" in repr(optimized)

    def test_fixpoint_fast(self):
        pass_ = LlfPass()
        pass_.run(parse(
            "a := x_na; while c < 2 { b := x_na; c := c + 1; } return 0;"))
        assert pass_.stats.max_iterations <= 3
