"""Live event streams (``repro-events/1``) and the flight recorder."""

import pytest

import repro.cli as cli
from repro import obs
from repro.obs.events import (
    EVENTS_SCHEMA,
    EventStream,
    read_events,
    render_flight,
    validate_events,
)

SB = ["x_rlx := 1; a := y_rlx; return a;",
      "y_rlx := 1; b := x_rlx; return b;"]


class TestEventStream:
    def test_ndjson_round_trip(self, tmp_path):
        path = str(tmp_path / "events.ndjson")
        stream = EventStream(path, meta={"command": "test"})
        stream.emit("state", span="demo", states=5)
        stream.emit("truncation", span="demo", reason="state-bound",
                    rule="rule.demo.step")
        stream.close()
        events = read_events(path)
        assert validate_events(events) == []
        head = events[0]
        assert head["ev"] == "meta" and head["schema"] == EVENTS_SCHEMA
        assert head["command"] == "test"
        assert [event["ev"] for event in events[1:]] \
            == ["state", "truncation"]
        assert stream.last_rule == "rule.demo.step"

    def test_ring_truncation_is_marked(self):
        stream = EventStream(None, ring=4)
        for index in range(10):
            stream.emit("state", states=index)
        dump = stream.flight_dump()
        # 11 events total (meta + 10), ring keeps 4
        assert dump["truncated"] is True and dump["dropped"] == 7
        assert len(dump["events"]) == 4
        text = render_flight(dump)
        assert "7 earlier event(s) dropped" in text

    def test_replay_reassigns_seq_and_tags_case(self, tmp_path):
        worker = EventStream(None)
        worker.emit("state", span="seq.game", states=3)
        parent = EventStream(str(tmp_path / "merged.ndjson"))
        for event in worker.drain()["events"]:
            parent.replay(event, case=7)
        parent.close()
        events = read_events(str(tmp_path / "merged.ndjson"))
        assert validate_events(events) == []
        replayed = [event for event in events if event.get("case") == 7]
        assert [event["ev"] for event in replayed] == ["meta", "state"]
        assert replayed[-1]["states"] == 3

    def test_emit_after_close_raises(self, tmp_path):
        stream = EventStream(str(tmp_path / "events.ndjson"))
        stream.close()
        with pytest.raises(RuntimeError):
            stream.emit("state")

    def test_validate_rejects_headless_streams(self):
        assert validate_events([]) == ["empty stream (no meta line)"]
        assert validate_events([{"ev": "state", "seq": 0, "t": 0.0}])
        out_of_order = [
            {"ev": "meta", "schema": EVENTS_SCHEMA, "seq": 1, "t": 0.0},
            {"ev": "state", "seq": 0, "t": 0.0},
        ]
        assert any("monotonic" in problem
                   for problem in validate_events(out_of_order))


class TestSessionStream:
    def test_span_events_streamed_quiet_spans_suppressed(self, tmp_path):
        path = str(tmp_path / "events.ndjson")
        with obs.session(stream=path):
            with obs.span("demo.phase"):
                with obs.span("psna.cert"):
                    pass
        events = read_events(path)
        names = {(event["ev"], event.get("name")) for event in events}
        assert ("span-enter", "demo.phase") in names
        assert ("span-exit", "demo.phase") in names
        assert not any(event.get("name") == "psna.cert" for event in events)

    def test_session_close_emits_rule_coverage(self, tmp_path):
        path = str(tmp_path / "events.ndjson")
        with obs.session(stream=path):
            obs.inc("rule.demo.step", 3)
            obs.inc("other.counter", 1)
        events = read_events(path)
        coverage = [event for event in events if event["ev"] == "coverage"]
        assert coverage and coverage[-1]["rules"] == {"rule.demo.step": 3}


class TestCliStream:
    def test_truncation_event_names_span_and_last_rule(self, tmp_path,
                                                       capsys):
        """Acceptance: a budget-truncated run emits an event naming the
        span and the last rule fired."""
        path = str(tmp_path / "events.ndjson")
        assert cli.main(["explore", "--machine", "pf", "--max-states", "5",
                         "--stream", path, *SB]) == 0
        capsys.readouterr()
        events = read_events(path)
        assert validate_events(events) == []
        truncations = [event for event in events
                       if event["ev"] == "truncation"]
        assert truncations
        event = truncations[0]
        assert event["span"] == "psna.explore"
        assert event["reason"] == "state-bound"
        assert event["last_rule"].startswith("rule.psna.")

    def test_worker_streams_merge_deterministically(self, tmp_path,
                                                    capsys):
        path = str(tmp_path / "events.ndjson")
        assert cli.main(["litmus", "--jobs", "2", "--stream", path]) == 0
        capsys.readouterr()
        events = read_events(path)
        assert validate_events(events) == []
        cases = {event["case"] for event in events if "case" in event}
        assert cases == set(range(54))

    def test_crash_prints_the_flight_recorder(self, tmp_path, capsys,
                                              monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(cli, "explore", boom)
        with pytest.raises(RuntimeError):
            cli.main(["explore", "--machine", "full",
                      "--stream", str(tmp_path / "events.ndjson"), SB[0]])
        err = capsys.readouterr().err
        assert "-- flight recorder --" in err
        assert "span stack" in err

    def test_unwritable_stream_is_a_usage_error(self, tmp_path, capsys):
        target = str(tmp_path / "missing-dir" / "events.ndjson")
        assert cli.main(["explore", "--machine", "pf", "--stream", target,
                         *SB]) == 2
        assert "cannot write stream" in capsys.readouterr().err
