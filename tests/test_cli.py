"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SLF_SRC = "x_na := 1; b := x_na; return b;"
SLF_TGT = "x_na := 1; b := 1; return b;"
BAD_TGT = "x_na := 1; a := x_na; return a;"
BAD_SRC = "a := x_na; x_na := 1; return a;"


class TestValidate:
    def test_valid_transformation(self, capsys):
        assert main(["validate", SLF_SRC, SLF_TGT]) == 0
        out = capsys.readouterr().out
        assert "VALID" in out and "simple" in out

    def test_invalid_transformation(self, capsys):
        assert main(["validate", BAD_SRC, BAD_TGT]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "target trace" in out

    def test_advanced_notion_reported(self, capsys):
        assert main(["validate", "x_rel := 1; y_na := 2; return 0;",
                     "y_na := 2; x_rel := 1; return 0;"]) == 0
        assert "advanced" in capsys.readouterr().out

    def test_oracle_reported_for_late_ub(self, capsys):
        source = ("a := x_rlx; if a == 1 { b := 1 / 0; } "
                  "while 1 { skip; } return 0;")
        target = "b := 1 / 0; a := x_rlx; while 1 { skip; } return 0;"
        assert main(["validate", source, target]) == 1
        assert "refuting oracle" in capsys.readouterr().out

    def test_file_arguments(self, tmp_path, capsys):
        src = tmp_path / "src.whl"
        tgt = tmp_path / "tgt.whl"
        src.write_text(SLF_SRC)
        tgt.write_text(SLF_TGT)
        assert main(["validate", str(src), str(tgt)]) == 0


class TestOptimize:
    def test_prints_optimized_source(self, capsys):
        assert main(["optimize", SLF_SRC]) == 0
        out = capsys.readouterr().out
        assert "b := 1;" in out

    def test_validate_flag_reports_certificates(self, capsys):
        assert main(["optimize", SLF_SRC, "--validate"]) == 0
        captured = capsys.readouterr()
        assert "certified" in captured.err

    def test_extended_pipeline(self, capsys):
        program = "k := 2; x_na := k; a := x_na; unused := w_na; return a;"
        assert main(["optimize", program, "-O2"]) == 0
        out = capsys.readouterr().out
        assert "w_na" not in out

    def test_output_reparses(self, capsys):
        from repro.lang import parse

        assert main(["optimize", SLF_SRC]) == 0
        parse(capsys.readouterr().out)


class TestExplore:
    SB = ["x_rlx := 1; a := y_rlx; return a;",
          "y_rlx := 1; b := x_rlx; return b;"]

    def test_sc_machine(self, capsys):
        assert main(["explore", "--machine", "sc", *self.SB]) == 0
        out = capsys.readouterr().out
        assert "machine: sc" in out
        assert "(0, 0)" not in out

    def test_pf_machine(self, capsys):
        assert main(["explore", "--machine", "pf", *self.SB]) == 0
        out = capsys.readouterr().out
        assert "(0, 0)" in out

    def test_full_machine_promises(self, capsys):
        lb = ["a := x_rlx; y_rlx := a; return a;",
              "b := y_rlx; x_rlx := 1; return b;"]
        assert main(["explore", "--machine", "full", "--promises", "1",
                     *lb]) == 0
        out = capsys.readouterr().out
        assert "(1, 1)" in out


def test_litmus_table_with_stats(capsys):
    # --stats also exercises the per-case stats table (acceptance
    # criterion) without a second full sweep in the suite.
    assert main(["litmus", "--stats"]) == 0
    captured = capsys.readouterr()
    assert "54/54 verdicts match" in captured.out
    header = captured.out.splitlines()
    index = next(i for i, line in enumerate(header) if "dedup%" in line)
    assert "states" in header[index] and "time_ms" in header[index]
    # one stats row per case, each with a states count and a dedup rate
    rows = [line for line in header[index + 1:] if line.strip()]
    assert len(rows) == 54
    assert all("%" in row for row in rows)
    # the global metrics table lands on stderr
    assert "seq.check.transformations" in captured.err


def test_litmus_table_extended(capsys):
    assert main(["litmus", "--extended"]) == 0
    out = capsys.readouterr().out
    assert "64/64 verdicts match" in out
    assert "slf-across-rel-fence" in out
    # satellite: the incomplete column is part of the table itself
    rows = [line for line in out.splitlines()
            if " ok " in line or "MISMATCH" in line]
    assert rows and all(line.rstrip().endswith("-") for line in rows)


def test_litmus_json_format(capsys):
    import json

    assert main(["litmus", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 54 and payload["mismatches"] == 0
    row = payload["cases"][0]
    for key in ("case", "expected", "measured", "agree", "complete",
                "incomplete_reasons", "game_states"):
        assert key in row
    assert all(case["agree"] for case in payload["cases"])


class TestAdequacy:
    def test_adequate_pair(self, capsys):
        assert main(["adequacy", SLF_SRC, SLF_TGT]) == 0
        out = capsys.readouterr().out
        assert "adequate" in out
        assert "refines" in out

    def test_invalid_pair_reports_contexts(self, capsys):
        # invalid in SEQ; adequacy still holds (theorem predicts nothing)
        assert main(["adequacy", BAD_SRC, BAD_TGT]) == 0
        out = capsys.readouterr().out
        assert "VIOLATES" in out  # the empty context separates them


class TestObservabilityFlags:
    SB = ["x_rlx := 1; a := y_rlx; return a;",
          "y_rlx := 1; b := x_rlx; return b;"]

    def test_explore_trace_final_event_matches_output(self, tmp_path,
                                                      capsys):
        """Acceptance: the trace's final event carries the same behavior
        set the CLI prints."""
        from repro.obs import read_trace

        path = str(tmp_path / "out.jsonl")
        assert main(["explore", "--machine", "pf", "--trace", path,
                     *self.SB]) == 0
        printed = {line.strip() for line in capsys.readouterr().out.splitlines()
                   if line.startswith("  ")}
        events = read_trace(path)
        assert events[0]["ev"] == "meta"
        final = events[-1]
        assert final["ev"] == "event" and final["name"] == "result"
        assert set(final["behaviors"]) == printed
        assert final["complete"] is True

    def test_explore_stats_output_stable(self, capsys):
        """Two identical runs print identical counter tables."""
        def stats_lines():
            assert main(["explore", "--machine", "pf", "--stats",
                         *self.SB]) == 0
            err = capsys.readouterr().err
            return [line for line in err.splitlines()
                    if line and "span." not in line]

        assert stats_lines() == stats_lines()

    def test_explore_warns_on_state_bound(self, capsys):
        assert main(["explore", "--machine", "pf", "--max-states", "3",
                     *self.SB]) == 0
        captured = capsys.readouterr()
        assert "INCOMPLETE" in captured.err
        assert "state-bound" in captured.err
        assert "complete: False" in captured.out

    def test_explore_warns_on_depth_bound(self, capsys):
        assert main(["explore", "--machine", "pf", "--max-depth", "2",
                     *self.SB]) == 0
        assert "depth-bound" in capsys.readouterr().err

    def test_sc_machine_warns_too(self, capsys):
        assert main(["explore", "--machine", "sc", "--max-states", "2",
                     *self.SB]) == 0
        assert "state-bound" in capsys.readouterr().err

    def test_validate_profile_prints_spans(self, capsys):
        assert main(["validate", SLF_SRC, SLF_TGT, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "seq.check.simple" in err and "total_s" in err

    def test_optimize_stats_reports_pass_sizes(self, capsys):
        assert main(["optimize", SLF_SRC, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "nodes" in captured.err
        assert "b := 1;" in captured.out

    def test_adequacy_trace_has_context_events(self, tmp_path, capsys):
        from repro.obs import read_trace

        path = str(tmp_path / "adequacy.jsonl")
        assert main(["adequacy", SLF_SRC, SLF_TGT, "--trace", path]) == 0
        events = read_trace(path)
        contexts = [event for event in events
                    if event["ev"] == "event"
                    and event.get("name") == "adequacy.context"]
        assert contexts and all("refines" in event for event in contexts)
        assert events[-1]["name"] == "result"
        assert events[-1]["adequate"] is True

    def test_no_flags_means_no_session(self, capsys):
        from repro import obs

        assert main(["explore", "--machine", "pf", *self.SB]) == 0
        assert not obs.enabled()
        assert capsys.readouterr().err == ""


def test_version_prints_provenance(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert out.startswith(f"repro {__version__}")
    for field in ("git sha", "created at", "python"):
        assert field in out


class TestProgressHeartbeat:
    def test_explain_progress_heartbeat_on_stderr(self, capsys):
        programs = ["x_rlx := 1; a := y_rlx; return a;",
                    "y_rlx := 1; b := x_rlx; return b;"]
        assert main(["explain", "--witness", *programs,
                     "--progress"]) == 0
        captured = capsys.readouterr()
        assert "explain:" in captured.err and "elapsed" in captured.err
        # stdout stays machine-readable — no heartbeat lines mixed in
        assert "elapsed" not in captured.out

    def test_fuzz_replay_progress_heartbeat_on_stderr(self, capsys):
        import os

        from repro.fuzz.corpus import DEFAULT_CORPUS_DIR

        path = os.path.join(DEFAULT_CORPUS_DIR,
                            "opt-dse-across-release.repro")
        assert main(["fuzz", "--replay", path, "--progress"]) == 0
        captured = capsys.readouterr()
        assert "replay" in captured.err and "elapsed" in captured.err


def test_help_lists_subcommands(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    for command in ("validate", "optimize", "explore", "litmus", "adequacy",
                    "coverage", "explain"):
        assert command in out
