"""Tests for the command-line interface."""

import pytest

from repro.cli import main

SLF_SRC = "x_na := 1; b := x_na; return b;"
SLF_TGT = "x_na := 1; b := 1; return b;"
BAD_TGT = "x_na := 1; a := x_na; return a;"
BAD_SRC = "a := x_na; x_na := 1; return a;"


class TestValidate:
    def test_valid_transformation(self, capsys):
        assert main(["validate", SLF_SRC, SLF_TGT]) == 0
        out = capsys.readouterr().out
        assert "VALID" in out and "simple" in out

    def test_invalid_transformation(self, capsys):
        assert main(["validate", BAD_SRC, BAD_TGT]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out
        assert "target trace" in out

    def test_advanced_notion_reported(self, capsys):
        assert main(["validate", "x_rel := 1; y_na := 2; return 0;",
                     "y_na := 2; x_rel := 1; return 0;"]) == 0
        assert "advanced" in capsys.readouterr().out

    def test_oracle_reported_for_late_ub(self, capsys):
        source = ("a := x_rlx; if a == 1 { b := 1 / 0; } "
                  "while 1 { skip; } return 0;")
        target = "b := 1 / 0; a := x_rlx; while 1 { skip; } return 0;"
        assert main(["validate", source, target]) == 1
        assert "refuting oracle" in capsys.readouterr().out

    def test_file_arguments(self, tmp_path, capsys):
        src = tmp_path / "src.whl"
        tgt = tmp_path / "tgt.whl"
        src.write_text(SLF_SRC)
        tgt.write_text(SLF_TGT)
        assert main(["validate", str(src), str(tgt)]) == 0


class TestOptimize:
    def test_prints_optimized_source(self, capsys):
        assert main(["optimize", SLF_SRC]) == 0
        out = capsys.readouterr().out
        assert "b := 1;" in out

    def test_validate_flag_reports_certificates(self, capsys):
        assert main(["optimize", SLF_SRC, "--validate"]) == 0
        captured = capsys.readouterr()
        assert "certified" in captured.err

    def test_extended_pipeline(self, capsys):
        program = "k := 2; x_na := k; a := x_na; unused := w_na; return a;"
        assert main(["optimize", program, "-O2"]) == 0
        out = capsys.readouterr().out
        assert "w_na" not in out

    def test_output_reparses(self, capsys):
        from repro.lang import parse

        assert main(["optimize", SLF_SRC]) == 0
        parse(capsys.readouterr().out)


class TestExplore:
    SB = ["x_rlx := 1; a := y_rlx; return a;",
          "y_rlx := 1; b := x_rlx; return b;"]

    def test_sc_machine(self, capsys):
        assert main(["explore", "--machine", "sc", *self.SB]) == 0
        out = capsys.readouterr().out
        assert "machine: sc" in out
        assert "(0, 0)" not in out

    def test_pf_machine(self, capsys):
        assert main(["explore", "--machine", "pf", *self.SB]) == 0
        out = capsys.readouterr().out
        assert "(0, 0)" in out

    def test_full_machine_promises(self, capsys):
        lb = ["a := x_rlx; y_rlx := a; return a;",
              "b := y_rlx; x_rlx := 1; return b;"]
        assert main(["explore", "--machine", "full", "--promises", "1",
                     *lb]) == 0
        out = capsys.readouterr().out
        assert "(1, 1)" in out


def test_litmus_table(capsys):
    assert main(["litmus"]) == 0
    out = capsys.readouterr().out
    assert "54/54 verdicts match" in out


def test_litmus_table_extended(capsys):
    assert main(["litmus", "--extended"]) == 0
    out = capsys.readouterr().out
    assert "64/64 verdicts match" in out
    assert "slf-across-rel-fence" in out


class TestAdequacy:
    def test_adequate_pair(self, capsys):
        assert main(["adequacy", SLF_SRC, SLF_TGT]) == 0
        out = capsys.readouterr().out
        assert "adequate" in out
        assert "refines" in out

    def test_invalid_pair_reports_contexts(self, capsys):
        # invalid in SEQ; adequacy still holds (theorem predicts nothing)
        assert main(["adequacy", BAD_SRC, BAD_TGT]) == 0
        out = capsys.readouterr().out
        assert "VIOLATES" in out  # the empty context separates them


def test_help_lists_subcommands(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    for command in ("validate", "optimize", "explore", "litmus", "adequacy"):
        assert command in out
