"""Coherence and multi-thread litmus shapes in PS^na.

Complements ``test_psna_litmus.py`` with the per-location coherence
axioms (Co*) and the four-thread IRIW family — behaviors the promising
semantics is known to allow or forbid.
"""

import pytest

from repro.lang import parse
from repro.psna import PsConfig, explore

PF = PsConfig(allow_promises=False)
FULL = PsConfig(promise_budget=1)


def returns(sources, config=PF):
    return explore([parse(s) for s in sources], config).returns()


class TestCoherence:
    def test_coww_writes_ordered_per_location(self):
        """CoWW: a thread's two writes to x are ordered; a later reader
        never sees them inverted."""
        outcomes = returns([
            "x_rlx := 1; x_rlx := 2; return 0;",
            "a := x_rlx; b := x_rlx; return a * 10 + b;"])
        values = {r[1] for r in outcomes}
        assert 21 not in values  # read 2 then 1: forbidden
        assert {0, 22}.issubset(values)

    def test_corw_read_then_write_ordered(self):
        """CoRW1: a read never reads from a write po-later in its thread."""
        outcomes = returns([
            "a := x_rlx; x_rlx := 1; return a;"])
        assert {r[0] for r in outcomes} == {0}

    def test_cowr_write_read_same_thread(self):
        """CoWR: a thread cannot read a value older than its own write."""
        outcomes = returns([
            "x_rlx := 2; a := x_rlx; return a;",
            "x_rlx := 1; return 0;"])
        values = {r[0] for r in outcomes}
        assert 0 not in values  # the init value is behind the own write
        assert {1, 2}.issubset(values)

    def test_own_write_visible(self):
        outcomes = returns(["x_rlx := 5; a := x_rlx; return a;"])
        assert outcomes == {(5,)}


class TestIriw:
    WRITERS = ["x_rlx := 1; return 0;", "y_rlx := 1; return 0;"]

    def _readers(self, mode, fenced=False):
        fence = "fence_sc; " if fenced else ""
        return [
            f"a := x_{mode}; {fence}b := y_{mode}; return a * 10 + b;",
            f"c := y_{mode}; {fence}d := x_{mode}; return c * 10 + d;"]

    def test_iriw_acquire_allows_disagreement(self):
        """Without SC, readers may disagree on the write order."""
        outcomes = returns(self.WRITERS + self._readers("acq"))
        pairs = {(r[2], r[3]) for r in outcomes}
        assert (10, 10) in pairs

    def test_iriw_sc_fences_forbid_disagreement(self):
        outcomes = returns(self.WRITERS + self._readers("rlx", fenced=True))
        pairs = {(r[2], r[3]) for r in outcomes}
        assert (10, 10) not in pairs
        assert (11, 11) in pairs  # both fully observe


class TestWriteSubsumption:
    def test_2_plus_2w_relaxed(self):
        """2+2W: both locations may end with either final write."""
        result = explore([
            parse("x_rlx := 1; y_rlx := 2; return 0;"),
            parse("y_rlx := 1; x_rlx := 2; return 0;"),
        ], PF)
        # final memory isn't directly observable; probe via readers
        outcomes = returns([
            "x_rlx := 1; y_rlx := 2; return 0;",
            "y_rlx := 1; x_rlx := 2; return 0;",
            "a := x_rlx; b := y_rlx; return a * 10 + b;"])
        values = {r[2] for r in outcomes}
        assert {11, 22, 12, 21}.issubset(values)

    def test_mp_with_rmw_synchronization(self):
        """An acq-rel RMW passes the message like a rel/acq pair."""
        outcomes = returns([
            "x_na := 1; f := fadd_rlx_rel(l_rlx, 1); return 0;",
            "g := fadd_acq_rlx(l_rlx, 0); "
            "if g == 1 { b := x_na; return b; } return 9;"],
            FULL)
        from repro.lang import UNDEF

        assert (0, 1) in outcomes
        assert (0, UNDEF) not in outcomes
