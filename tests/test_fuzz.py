"""Tests for the differential fuzzer: generation, oracles, campaigns,
the regression corpus, and the ``repro fuzz`` CLI.

The two load-bearing properties here mirror the CI gates:

* a small campaign on the current code is deterministic and clean, and
* injecting a deliberately broken pass makes the same campaign fail,
  with every failure minimized to a litmus-sized counterexample.
"""

import os

import pytest

from repro.cli import main
from repro.fuzz import (
    INJECT_CHOICES,
    FuzzConfig,
    build_case,
    case_seed,
    iter_corpus,
    kind_of,
    load_entry,
    parse_entry,
    passes_with_injection,
    plan_campaign,
    render_entry,
    replay,
    run_campaign,
    run_oracles,
    statement_count,
)
from repro.fuzz.corpus import DEFAULT_CORPUS_DIR, ReproEntry, write_entry
from repro.lang.parser import parse
from repro.lang.pretty import to_source

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS_DIR = os.path.join(REPO_ROOT, DEFAULT_CORPUS_DIR)

#: Small-but-representative budget: covers every kind at least twice.
SMOKE_BUDGET = 12


class TestGeneration:
    def test_case_seed_policy(self):
        assert case_seed(0, 0) == 0
        assert case_seed(0, 7) == 7
        assert case_seed(3, 2) == 3 * 1_000_003 + 2

    def test_kind_cycle_covers_all_kinds(self):
        kinds = {kind_of(i) for i in range(6)}
        assert kinds == {"opt", "exec", "concurrent", "adequacy"}

    def test_build_case_is_deterministic(self):
        a = build_case(4, case_seed(0, 4), kind_of(4))
        b = build_case(4, case_seed(0, 4), kind_of(4))
        assert [to_source(t) for t in a.threads] == \
            [to_source(t) for t in b.threads]

    def test_concurrent_cases_have_multiple_threads(self):
        config = FuzzConfig()
        for index in range(0, 24):
            if kind_of(index) != "concurrent":
                continue
            case = build_case(index, case_seed(1, index), "concurrent",
                              config)
            assert len(case.threads) >= 2

    def test_plan_is_picklable_descriptors(self):
        import pickle
        plan = plan_campaign(0, 6)
        assert len(plan) == 6
        pickle.dumps(plan)  # must cross a spawn-pool boundary

    def test_locations_stay_mode_disjoint(self):
        """No generated program mixes atomic and non-atomic access to
        one location (the language's location discipline)."""
        from repro.lang.ast import Load, Store, walk
        from repro.lang.events import NA
        config = FuzzConfig()
        for index in range(12):
            case = build_case(index, case_seed(2, index), kind_of(index),
                              config)
            na, atomic = set(), set()
            for thread in case.threads:
                for node in walk(thread):
                    if isinstance(node, (Load, Store)):
                        (na if node.mode is NA else atomic).add(node.loc)
            assert not (na & atomic)


class TestOracles:
    def test_clean_case_passes_all_oracles(self):
        case = build_case(0, case_seed(0, 0), "opt")
        outcomes = run_oracles(case, FuzzConfig())
        assert outcomes
        assert all(o.status in ("pass", "skip") for o in outcomes)

    def test_exec_oracles_on_handwritten_program(self):
        case = build_case(
            0, 0, "exec").__class__(
            index=0, seed=0, kind="exec",
            threads=(parse("x_na := 1; a := x_na; print(a); return a;"),))
        outcomes = run_oracles(case, FuzzConfig())
        assert all(o.status == "pass" for o in outcomes)

    def test_broken_dse_is_caught_directly(self):
        """The unguarded DSE mutant really fires and really gets
        rejected by translation validation."""
        from repro.fuzz.campaign import FuzzCase
        case = FuzzCase(
            index=0, seed=0, kind="opt",
            threads=(parse("y_rlx := 1; y_rlx := 0; return 0;"),),
            inject="dse-unguarded")
        outcomes = run_oracles(case, FuzzConfig())
        failed = [o for o in outcomes if o.failed]
        assert failed and failed[0].oracle == "opt-seq-validate"

    def test_inject_choices_registry(self):
        assert "none" in INJECT_CHOICES
        assert "dse-unguarded" in INJECT_CHOICES
        stock = passes_with_injection("none")
        broken = passes_with_injection("dse-unguarded")
        assert [name for name, _ in stock] == [name for name, _ in broken]
        assert dict(stock)["dse"] is not dict(broken)["dse"]
        with pytest.raises(ValueError):
            passes_with_injection("no-such-bug")


class TestCampaign:
    def test_smoke_campaign_is_clean_and_deterministic(self):
        first = run_campaign(seed=0, budget=SMOKE_BUDGET, corpus_dir=None)
        second = run_campaign(seed=0, budget=SMOKE_BUDGET, corpus_dir=None)
        assert first.ok, first.summary()
        assert first.summary() == second.summary()
        assert first.cases == SMOKE_BUDGET

    def test_summary_has_no_timing(self):
        result = run_campaign(seed=1, budget=6, corpus_dir=None)
        summary = result.summary()
        assert "seed=1 budget=6" in summary
        assert "s]" not in summary and "elapsed" not in summary

    def test_injected_dse_bug_is_caught_and_shrunk(self, tmp_path):
        """Acceptance criterion: with the non-atomic DSE guard disabled,
        the campaign reports failures and minimizes each to a
        counterexample of at most 6 statements."""
        result = run_campaign(seed=0, budget=40, inject="dse-unguarded",
                              corpus_dir=str(tmp_path))
        assert not result.ok
        for failure in result.failures:
            assert failure.oracle == "opt-seq-validate"
            assert 0 < failure.minimized_statements <= 6
            assert failure.corpus_path
            entry = load_entry(failure.corpus_path)
            assert entry.inject == "dse-unguarded"
            assert any(o.failed for o in replay(entry))

    def test_campaign_jobs_parity(self):
        serial = run_campaign(seed=2, budget=6, jobs=1, corpus_dir=None)
        parallel = run_campaign(seed=2, budget=6, jobs=2, corpus_dir=None)
        assert serial.summary() == parallel.summary()


class TestCorpus:
    def test_render_parse_round_trip(self):
        entry = ReproEntry(
            kind="concurrent", seed=41,
            threads=(parse("x_na := 1; return 0;"),
                     parse("a := x_na; return a;")),
            inject="none", oracle="conc-drf", detail="round trip")
        text = render_entry(entry)
        back = parse_entry(text, "<test>")
        assert back.kind == entry.kind
        assert back.seed == entry.seed
        assert back.oracle == entry.oracle
        assert [to_source(t) for t in back.threads] == \
            [to_source(t) for t in entry.threads]

    def test_write_entry_names_are_stable(self, tmp_path):
        entry = ReproEntry(kind="opt", seed=9,
                           threads=(parse("return 0;"),),
                           oracle="opt-seq-validate", detail="d")
        path = write_entry(str(tmp_path), entry)
        assert os.path.basename(path) == "opt-seq-validate-seed9.repro"
        assert load_entry(path).seed == 9

    def test_committed_corpus_replays_clean(self):
        """Every committed regression file must replay with all oracles
        of its kind passing — this is the forever-guard."""
        paths = list(iter_corpus(CORPUS_DIR))
        assert paths, f"no .repro files under {CORPUS_DIR}"
        for path in paths:
            entry = load_entry(path)
            if entry.inject != "none":
                continue  # injected-bug repros fail by design
            outcomes = replay(entry)
            bad = [o for o in outcomes if o.failed]
            assert not bad, (path, bad)

    def test_committed_corpus_parses_deterministically(self):
        for path in iter_corpus(CORPUS_DIR):
            entry = load_entry(path)
            assert render_entry(entry) == render_entry(
                parse_entry(render_entry(entry), path))


class TestCli:
    def test_fuzz_smoke(self, capsys):
        assert main(["fuzz", "--seed", "0", "--budget", "6",
                     "--no-corpus"]) == 0
        out = capsys.readouterr().out
        assert "fuzz campaign: seed=0 budget=6" in out
        assert "0 failure(s)" in out

    def test_fuzz_deterministic_stdout(self, capsys):
        main(["fuzz", "--seed", "3", "--budget", "6", "--no-corpus"])
        first = capsys.readouterr().out
        main(["fuzz", "--seed", "3", "--budget", "6", "--no-corpus"])
        second = capsys.readouterr().out
        assert first == second

    def test_fuzz_inject_fails(self, capsys, tmp_path):
        code = main(["fuzz", "--seed", "0", "--budget", "12",
                     "--inject-bug", "dse-unguarded",
                     "--corpus", str(tmp_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILURE opt-seq-validate" in out
        assert list(iter_corpus(str(tmp_path)))

    def test_fuzz_replay_pass(self, capsys):
        path = os.path.join(CORPUS_DIR, "opt-dse-across-release.repro")
        assert main(["fuzz", "--replay", path]) == 0
        out = capsys.readouterr().out
        assert "pass" in out and "opt-seq-validate" in out

    def test_fuzz_replay_missing_file(self, capsys):
        assert main(["fuzz", "--replay", "/nonexistent.repro"]) == 2

    def test_fuzz_replay_explain(self, capsys):
        path = os.path.join(CORPUS_DIR, "conc-message-passing.repro")
        assert main(["fuzz", "--replay", path, "--explain"]) == 0
        out = capsys.readouterr().out
        assert "thread" in out.lower()

    def test_fuzz_stats_on_stderr(self, capsys):
        assert main(["fuzz", "--budget", "6", "--no-corpus",
                     "--stats"]) == 0
        captured = capsys.readouterr()
        assert "fuzz.campaign" in captured.err
        assert "fuzz.campaign" not in captured.out
