"""The verification service: engine, HTTP front end, verdict store.

Three layers under test:

* :class:`repro.serve.service.VerificationService` driven directly —
  dedup, store hits, event streams, drain-on-shutdown;
* the HTTP front end through a real bound socket and the
  :mod:`repro.serve.client` wrapper — error bodies, NDJSON streaming,
  byte-parity with the plain CLI;
* :class:`repro.serve.store.VerdictStore` under concurrent writers and
  across restarts.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.litmus import ALL_TRANSFORMATION_CASES
from repro.obs.events import validate_events
from repro.serve import client
from repro.serve.http import make_server
from repro.serve.jobs import (
    RequestError,
    job_id_for,
    normalize_request,
    request_digest,
)
from repro.serve.service import ServiceClosed, VerificationService
from repro.serve.store import VerdictStore

VALIDATE_SPEC = {"kind": "validate",
                 "source": "x_na := 1; x_na := 2; return 0;",
                 "target": "x_na := 2; return 0;"}


@pytest.fixture
def service(tmp_path):
    created = []

    def factory(jobs: int = 1, store_dir=None) -> VerificationService:
        if store_dir is None:
            store_dir = str(tmp_path / "verdicts")
        svc = VerificationService(jobs=jobs, store_dir=store_dir)
        created.append(svc)
        return svc

    yield factory
    for svc in created:
        svc.shutdown(drain=True, timeout=30.0)


@pytest.fixture
def live(service):
    """A service behind a real HTTP socket; yields (base_url, service)."""
    servers = []

    def factory(jobs: int = 1, store_dir=None, **server_kw):
        svc = service(jobs=jobs, store_dir=store_dir)
        server = make_server("127.0.0.1", 0, svc, **server_kw)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        host, port = server.server_address[:2]
        return f"http://{host}:{port}", svc

    yield factory
    for server, thread in servers:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestNormalization:
    def test_formatting_does_not_change_the_job_id(self):
        a = normalize_request({"kind": "validate",
                               "source": "x_na:=1;return 0;",
                               "target": "x_na   := 1; return 0;"})
        b = normalize_request({"kind": "validate",
                               "source": "x_na := 1;\nreturn 0;",
                               "target": "x_na := 1; return 0;"})
        assert a == b
        assert job_id_for(a) == job_id_for(b)

    def test_unknown_kind_is_a_400(self):
        with pytest.raises(RequestError) as excinfo:
            normalize_request({"kind": "frobnicate"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown-kind"

    def test_oversized_program_is_a_413(self):
        huge = "x_na := 1; " * 10_000 + "return 0;"
        with pytest.raises(RequestError) as excinfo:
            normalize_request({"kind": "validate", "source": huge,
                               "target": "return 0;"},
                              max_program_bytes=1024)
        assert excinfo.value.status == 413
        assert excinfo.value.code == "program-too-large"

    def test_unparseable_program_is_a_400_not_a_traceback(self):
        with pytest.raises(RequestError) as excinfo:
            normalize_request({"kind": "validate", "source": "x := (",
                               "target": "return 0;"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad-program"


class TestServiceEngine:
    def test_validate_job_end_to_end(self, service):
        svc = service()
        job, served = svc.submit(VALIDATE_SPEC)
        assert served == "queue"
        finished = svc.wait(job.id, timeout=120.0)
        assert finished.state == "done"
        assert finished.result["command"] == "validate"
        assert finished.result["valid"] is True

    def test_event_stream_is_one_valid_repro_events_stream(self, service):
        """Meta first, monotonic seq, result + stream-end present —
        across the submit/start/complete hand-offs there must be exactly
        one stream, not one per phase."""
        svc = service()
        job, _ = svc.submit(VALIDATE_SPEC)
        svc.wait(job.id, timeout=120.0)
        lines, _cursor, ended = svc.read_events(job.id, timeout=30.0)
        assert ended
        events = [json.loads(line) for line in lines]
        assert validate_events(events) == []
        kinds = [event.get("name") or event["ev"] for event in events]
        assert kinds[0] == "meta"
        assert "result" in kinds
        assert kinds[-1] == "stream-end"

    def test_parallel_identical_submissions_share_one_job(self, service):
        """The dedup gate under contention: N racing submissions of the
        same request must collapse onto a single job id and a single
        execution."""
        svc = service()
        results = []
        barrier = threading.Barrier(8)

        def submitter():
            barrier.wait()
            results.append(svc.submit(VALIDATE_SPEC))

        threads = [threading.Thread(target=submitter) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = {job.id for job, _ in results}
        assert len(ids) == 1
        assert sum(1 for _, served in results if served == "queue") == 1
        svc.wait(ids.pop(), timeout=120.0)
        assert svc.executed == 1
        assert svc.deduped == 7

    def test_warm_restart_serves_from_the_verdict_store(self, service,
                                                        tmp_path):
        """A new service over the same store directory answers without
        executing — the verdict survives the process boundary."""
        store_dir = str(tmp_path / "persistent")
        cold = service(store_dir=store_dir)
        job, _ = cold.submit(VALIDATE_SPEC)
        result = cold.wait(job.id, timeout=120.0).result
        cold.shutdown(drain=True)

        warm = service(store_dir=store_dir)
        hit, served = warm.submit(VALIDATE_SPEC)
        assert served == "store"
        assert hit.cached is True
        assert hit.state == "done"
        assert hit.result == result
        assert warm.executed == 0

    def test_spawn_pool_jobs2_with_store_contention(self, service):
        """Several distinct jobs through the 2-worker spawn pool, all
        writing the shared verdict store; every verdict must land and
        re-submission must be answered from the store."""
        svc = service(jobs=2)
        names = [case.name for case in ALL_TRANSFORMATION_CASES[:6]]
        jobs = [svc.submit({"kind": "litmus", "case": name})[0]
                for name in names]
        for job in jobs:
            assert svc.wait(job.id, timeout=300.0).state == "done"
        assert svc.executed == len(names)
        stats = svc.store.stats()
        assert stats["writes"] == len(names)
        for name in names:
            _, served = svc.submit({"kind": "litmus", "case": name})
            assert served == "store"

    def test_shutdown_drains_inflight_jobs(self, service):
        """Every accepted job finishes before shutdown returns; intake
        closes immediately (late submissions raise ServiceClosed)."""
        svc = service()
        jobs = [svc.submit({"kind": "litmus", "case": case.name})[0]
                for case in ALL_TRANSFORMATION_CASES[:4]]
        svc.shutdown(drain=True, timeout=300.0)
        for job in jobs:
            assert job.state == "done"
        with pytest.raises(ServiceClosed):
            svc.submit(VALIDATE_SPEC)

    def test_store_disabled_still_serves(self, service):
        svc = service(store_dir="off")
        assert svc.store is None
        job, served = svc.submit(VALIDATE_SPEC)
        assert served == "queue"
        assert svc.wait(job.id, timeout=120.0).state == "done"
        # Without a store the only cache is live dedup, not verdicts.
        _, served = svc.submit(VALIDATE_SPEC)
        assert served == "store"  # finished registry entry answers


class TestHTTPFrontEnd:
    def _raw(self, base, method="POST", path="/v1/jobs", data=b"",
             headers=None):
        """One raw request; returns (status, parsed JSON body)."""
        req = urllib.request.Request(base + path, data=data,
                                     headers=headers or {}, method=method)
        try:
            with urllib.request.urlopen(req, timeout=30.0) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_version_health_check(self, live):
        base, _svc = live()
        body = client.request(base, "GET", "/v1/version")
        assert body["service"] == "repro-serve/1"
        assert body["kinds"] == ["adequacy", "explore", "litmus",
                                 "validate"]

    def test_malformed_json_is_a_400_error_body(self, live):
        base, _svc = live()
        status, body = self._raw(base, data=b"{not json",
                                 headers={"Content-Length": "9"})
        assert status == 400
        assert body["schema"] == "repro-error/1"
        assert body["error"] == "bad-json"
        assert "Traceback" not in json.dumps(body)

    def test_unknown_kind_is_a_400_error_body(self, live):
        base, _svc = live()
        with pytest.raises(client.ServiceError) as excinfo:
            client.submit(base, {"kind": "frobnicate"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown-kind"

    def test_oversized_body_is_a_413(self, live):
        base, _svc = live(max_body_bytes=64)
        with pytest.raises(client.ServiceError) as excinfo:
            client.submit(base, {"kind": "validate",
                                 "source": "x_na := 1; " * 32
                                           + "return 0;",
                                 "target": "return 0;"})
        assert excinfo.value.status == 413
        assert excinfo.value.code == "body-too-large"

    def test_unknown_job_is_a_404(self, live):
        base, _svc = live()
        with pytest.raises(client.ServiceError) as excinfo:
            client.request(base, "GET", "/v1/jobs/j-doesnotexist")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown-job"

    def test_unsupported_method_is_json_not_html(self, live):
        base, _svc = live()
        status, body = self._raw(base, method="DELETE",
                                 path="/v1/version")
        assert status in (405, 501)
        assert body["schema"] == "repro-error/1"

    def test_submit_wait_and_stream(self, live):
        base, _svc = live()
        submission = client.submit(base, VALIDATE_SPEC)
        assert submission["state"] in ("queued", "running", "done")
        status = client.wait_job(base, submission["job"], timeout=120.0)
        assert status["state"] == "done"
        assert status["result"]["valid"] is True
        sink = io.StringIO()
        assert client.stream_events(base, submission["job"],
                                    out=sink) > 0
        events = [json.loads(line)
                  for line in sink.getvalue().splitlines()]
        assert validate_events(events) == []
        assert events[-1]["ev"] == "stream-end"

    def test_litmus_catalog_is_byte_identical_to_the_cli(self, live,
                                                         capsys):
        """The CI hard gate, in-process: the service-backed catalog
        sweep renders exactly the bytes of ``repro litmus --format
        json`` (CI smoke repeats this over HTTP for the extended
        catalog, cold and warm)."""
        base, _svc = live(jobs=2)
        stats: dict = {}
        sink = io.StringIO()
        assert client.run_litmus(base, extended=False, as_json=True,
                                 out=sink, cache_stats=stats) == 0
        assert stats["total"] == len(ALL_TRANSFORMATION_CASES)
        assert stats["cached"] == 0
        assert cli_main(["litmus", "--format", "json"]) == 0
        assert sink.getvalue() == capsys.readouterr().out

        # The warm pass is answered from the verdict store — and still
        # renders the same bytes.
        warm_stats: dict = {}
        warm_sink = io.StringIO()
        assert client.run_litmus(base, extended=False, as_json=True,
                                 out=warm_sink,
                                 cache_stats=warm_stats) == 0
        assert warm_stats["hit_rate"] == 1.0
        assert warm_sink.getvalue() == sink.getvalue()

    def test_warm_batch_reports_store_hits(self, live):
        base, _svc = live()
        specs = [{"kind": "litmus", "case": case.name}
                 for case in ALL_TRANSFORMATION_CASES[:4]]
        cold = client.submit_batch(base, specs)
        for entry in cold["jobs"]:
            client.wait_job(base, entry["job"], timeout=300.0)
        assert cold["cached"] == 0
        warm = client.submit_batch(base, specs)
        assert warm["cached"] == warm["total"] == len(specs)
        for entry in warm["jobs"]:
            assert entry["cached"] is True
            assert entry["served_from"] == "store"

    def test_closed_service_maps_to_503_shutting_down(self, live):
        """Late submissions while the engine drains: the listener is
        still up, so the refusal must be a 503 error body, never a
        hang or a traceback."""
        base, svc = live()
        submission = client.submit(base, VALIDATE_SPEC)
        svc.shutdown(drain=True, timeout=300.0)
        assert svc.get(submission["job"]).state == "done"
        with pytest.raises(client.ServiceError) as excinfo:
            client.submit(base, VALIDATE_SPEC)
        assert excinfo.value.status == 503
        assert excinfo.value.code == "shutting-down"

    def test_shutdown_endpoint_drains_and_stops(self, live):
        base, svc = live()
        submission = client.submit(base, VALIDATE_SPEC)
        assert client.shutdown(base)["shutting_down"] is True
        # The accepted job still finishes (drain), then intake closes.
        job = svc.wait(submission["job"], timeout=300.0)
        assert job.state == "done"
        deadline = 200
        while not svc.stats()["closed"] and deadline:
            deadline -= 1
            threading.Event().wait(0.05)
        assert svc.stats()["closed"] is True


class TestVerdictStore:
    def test_concurrent_writers_one_directory(self, tmp_path):
        """Two store handles (= two service processes) interleave writes
        into one directory; a fresh handle sees every verdict."""
        directory = str(tmp_path / "shared")
        a, b = VerdictStore(directory), VerdictStore(directory)
        digests = []
        for index in range(16):
            canonical = {"kind": "validate", "n": index}
            digest = request_digest(canonical)
            digests.append(digest)
            (a if index % 2 else b).put(digest, "validate",
                                        {"n": index})
        a.close(), b.close()
        fresh = VerdictStore(directory)
        try:
            for index, digest in enumerate(digests):
                assert fresh.get(digest) == {"n": index}
        finally:
            fresh.close()

    def test_corrupt_segment_line_is_skipped_not_fatal(self, tmp_path):
        directory = tmp_path / "corrupt"
        store = VerdictStore(str(directory))
        digest = request_digest({"kind": "validate", "ok": True})
        store.put(digest, "validate", {"ok": True})
        store.close()
        segment = next(directory.glob("*.vseg"))
        with open(segment, "a") as handle:
            handle.write("{truncated garbage\n")
        reopened = VerdictStore(str(directory))
        try:
            assert reopened.get(digest) == {"ok": True}
        finally:
            reopened.close()


class TestTelemetry:
    """Cross-process request tracing and the ``/v1/metrics`` layer."""

    def test_one_job_is_one_trace_across_the_spawn_pool(self, live):
        """The acceptance path: a single HTTP job on a ``--jobs 2``
        service yields one trace covering normalize, store consult,
        queue wait, worker execute, and render — with the worker-side
        spans re-parented on the execute span and attributed to the
        originating trace id."""
        base, svc = live(jobs=2)
        submission = client.submit(base, VALIDATE_SPEC,
                                   trace_id="accept-1")
        assert submission["trace"] == "accept-1"
        client.wait_job(base, submission["job"], timeout=300.0)
        records = client.fetch_trace(base, submission["job"])
        head, spans = records[0], records[1:]
        assert head["ev"] == "meta"
        assert head["schema"] == "repro-trace/1"
        assert head["trace"] == "accept-1"
        names = {record["name"] for record in spans}
        assert {"serve.normalize", "serve.store", "serve.queue",
                "serve.execute", "serve.render",
                "serve.request"} <= names
        assert all(record["trace"] == "accept-1" for record in spans)
        root = next(r for r in spans if r["name"] == "serve.request")
        assert root["depth"] == 0
        execute = next(r for r in spans if r["name"] == "serve.execute")
        assert execute["parent"] == root["span"]
        workers = [r for r in spans if r.get("worker")]
        assert workers, "no worker-side spans crossed the pool boundary"
        assert all(w["depth"] == 2 and w["parent"] == execute["span"]
                   for w in workers)
        # The job's event stream carries the same attribution: every
        # trace-stamped event names the originating trace.
        lines, _cursor, ended = svc.read_events(submission["job"],
                                                timeout=30.0)
        assert ended
        stamped = [json.loads(line) for line in lines
                   if '"trace"' in line]
        assert stamped
        assert all(event["trace"] == "accept-1" for event in stamped)

    def test_unusable_trace_header_gets_a_fresh_id(self, live):
        base, _svc = live()
        submission = client.submit(base, VALIDATE_SPEC,
                                   trace_id="bad header\x00")
        assert submission["trace"]
        assert submission["trace"] != "bad header\x00"

    def test_metrics_json_and_prometheus_agree(self, live):
        from repro.serve.metrics import (
            exposition_problems,
            parse_exposition,
            sample_value,
        )

        base, _svc = live()
        submission = client.submit(base, VALIDATE_SPEC)
        client.wait_job(base, submission["job"], timeout=300.0)
        payload = client.fetch_metrics(base, as_json=True)
        assert payload["schema"] == "repro-servemetrics/1"
        text = client.fetch_metrics(base, as_json=False)
        assert exposition_problems(text) == []
        parsed = parse_exposition(text)
        assert sample_value(parsed, "repro_serve_requests_total") \
            == payload["counters"]["requests.total"]
        assert sample_value(parsed, "repro_serve_jobs_executed_total") \
            == payload["counters"]["jobs.executed"] == 1
        latency = payload["histograms"]["request.latency_s"]
        assert sample_value(
            parsed, "repro_serve_request_latency_seconds_count") \
            == latency["count"]

    def test_metrics_deterministic_across_worker_counts(self, service,
                                                        tmp_path):
        """The reproducibility gate: the same submissions through one
        in-process worker and through a 2-process spawn pool must
        produce byte-identical metrics on the deterministic projection
        (integer counters and histogram totals; wall-clock sums,
        gauges, and transport counters excluded by design)."""

        def run(jobs, store_dir):
            svc = service(jobs=jobs, store_dir=store_dir)
            specs = [VALIDATE_SPEC] \
                + [{"kind": "litmus", "case": case.name}
                   for case in ALL_TRANSFORMATION_CASES[:2]]
            for spec in specs:
                job, _ = svc.submit(spec)
                svc.wait(job.id, timeout=300.0)
            # A repeat submission exercises the served-from-registry
            # counter identically in both configurations.
            svc.submit(VALIDATE_SPEC)
            return svc.metrics_payload()

        def project(payload):
            counters = {name: value
                        for name, value in payload["counters"].items()
                        if not name.startswith("http.")}
            histogram_counts = {
                name: summary["count"]
                for name, summary in payload["histograms"].items()
                if not name.startswith("http.")}
            return json.dumps({"counters": counters,
                               "histograms": histogram_counts},
                              sort_keys=True)

        serial = run(1, str(tmp_path / "store-1"))
        pooled = run(2, str(tmp_path / "store-2"))
        assert project(serial) == project(pooled)

    def test_audit_ledger_records_the_request_lifecycle(self, live,
                                                        tmp_path):
        base, svc = live()
        submission = client.submit(base, VALIDATE_SPEC,
                                   trace_id="audit-1")
        client.wait_job(base, submission["job"], timeout=300.0)
        client.submit(base, VALIDATE_SPEC)  # warm: served without a run
        svc.shutdown(drain=True, timeout=60.0)
        audit_path = tmp_path / "verdicts" / "audit.jsonl"
        entries = [json.loads(line)
                   for line in audit_path.read_text().splitlines()]
        events = [entry["event"] for entry in entries]
        assert events.count("submitted") == 2
        assert events.count("completed") == 1
        first = next(e for e in entries if e["event"] == "submitted")
        assert first["trace"] == "audit-1"
        assert first["client"] == "127.0.0.1"
        assert first["job"] == submission["job"]
        completed = next(e for e in entries
                         if e["event"] == "completed")
        assert completed["state"] == "done"
        assert completed["verdict"]  # digest of the result payload
        warm = entries[events.index("submitted", 1)] \
            if events.index("submitted", 1) else entries[-1]
        assert warm["served_from"] in ("store", "dedup")

    def test_streaming_client_survives_drain_shutdown(self, live):
        """Satellite: a client mid-way through the event stream when
        ``shutdown(drain=True)`` lands must still receive the
        stream-end sentinel, never a hang or a dropped socket."""
        base, svc = live()
        case = ALL_TRANSFORMATION_CASES[0]
        submission = client.submit(base,
                                   {"kind": "litmus",
                                    "case": case.name})
        sink = io.StringIO()
        errors = []

        def streamer():
            try:
                client.stream_events(base, submission["job"], out=sink,
                                     timeout=300.0)
            except Exception as error:  # surfaced in the main thread
                errors.append(error)

        thread = threading.Thread(target=streamer)
        thread.start()
        svc.shutdown(drain=True, timeout=300.0)
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert errors == []
        events = [json.loads(line)
                  for line in sink.getvalue().splitlines()]
        assert events[-1]["ev"] == "stream-end"
        assert any((event.get("name") or event["ev"]) == "result"
                   for event in events)

    def test_repro_top_renders_one_frame(self, live, capsys):
        base, _svc = live()
        submission = client.submit(base, VALIDATE_SPEC)
        client.wait_job(base, submission["job"], timeout=300.0)
        assert cli_main(["top", "--base", base, "--once"]) == 0
        frame = capsys.readouterr().out
        assert "p50" in frame and "p95" in frame and "p99" in frame
        assert "queue" in frame
        # --once never clears the screen (pipe- and CI-friendly).
        assert "\x1b[" not in frame

    def test_top_against_a_dead_service_exits_two(self, capsys):
        assert cli_main(["top", "--base", "http://127.0.0.1:1",
                         "--once"]) == 2
        assert "" == capsys.readouterr().out


class TestStoreLRU:
    def _seed(self, directory, n=8):
        writer = VerdictStore(directory)
        digests = []
        for index in range(n):
            digest = request_digest({"kind": "validate", "n": index})
            digests.append(digest)
            writer.put(digest, "validate", {"n": index, "valid": True})
        writer.close()
        return digests

    def test_responses_identical_with_lru_on_and_off(self, tmp_path):
        directory = str(tmp_path / "store")
        digests = self._seed(directory)
        cached = VerdictStore(directory)
        bare = VerdictStore(directory, lru_entries=0)
        try:
            for _pass in range(2):  # cold from disk, then LRU-warm
                for digest in digests:
                    assert json.dumps(cached.get(digest),
                                      sort_keys=True) \
                        == json.dumps(bare.get(digest), sort_keys=True)
            stats = cached.stats()
            assert stats["lru_hits"] == len(digests)
            assert stats["lru_misses"] == len(digests)
            assert bare.stats()["lru_hits"] == 0
            assert bare.stats()["lru_size"] == 0
        finally:
            cached.close()
            bare.close()

    def test_lru_capacity_is_bounded(self, tmp_path):
        directory = str(tmp_path / "store")
        digests = self._seed(directory)
        store = VerdictStore(directory, lru_entries=2)
        try:
            for digest in digests:
                assert store.get(digest) is not None
            stats = store.stats()
            assert stats["lru_size"] == 2
            assert stats["lru_entries"] == 2
            # Re-reading the most recent entry hits; the evicted
            # oldest one goes back to disk.
            store.get(digests[-1])
            assert store.stats()["lru_hits"] == 1
            assert store.get(digests[0]) is not None
        finally:
            store.close()

    def test_get_misses_do_not_touch_lru_counters(self, tmp_path):
        store = VerdictStore(str(tmp_path / "store"))
        try:
            assert store.get("d" * 32) is None
            stats = store.stats()
            assert stats["misses"] == 1
            assert stats["lru_hits"] == stats["lru_misses"] == 0
        finally:
            store.close()
