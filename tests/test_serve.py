"""The verification service: engine, HTTP front end, verdict store.

Three layers under test:

* :class:`repro.serve.service.VerificationService` driven directly —
  dedup, store hits, event streams, drain-on-shutdown;
* the HTTP front end through a real bound socket and the
  :mod:`repro.serve.client` wrapper — error bodies, NDJSON streaming,
  byte-parity with the plain CLI;
* :class:`repro.serve.store.VerdictStore` under concurrent writers and
  across restarts.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.litmus import ALL_TRANSFORMATION_CASES
from repro.obs.events import validate_events
from repro.serve import client
from repro.serve.http import make_server
from repro.serve.jobs import (
    RequestError,
    job_id_for,
    normalize_request,
    request_digest,
)
from repro.serve.service import ServiceClosed, VerificationService
from repro.serve.store import VerdictStore

VALIDATE_SPEC = {"kind": "validate",
                 "source": "x_na := 1; x_na := 2; return 0;",
                 "target": "x_na := 2; return 0;"}


@pytest.fixture
def service(tmp_path):
    created = []

    def factory(jobs: int = 1, store_dir=None) -> VerificationService:
        if store_dir is None:
            store_dir = str(tmp_path / "verdicts")
        svc = VerificationService(jobs=jobs, store_dir=store_dir)
        created.append(svc)
        return svc

    yield factory
    for svc in created:
        svc.shutdown(drain=True, timeout=30.0)


@pytest.fixture
def live(service):
    """A service behind a real HTTP socket; yields (base_url, service)."""
    servers = []

    def factory(jobs: int = 1, store_dir=None, **server_kw):
        svc = service(jobs=jobs, store_dir=store_dir)
        server = make_server("127.0.0.1", 0, svc, **server_kw)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        host, port = server.server_address[:2]
        return f"http://{host}:{port}", svc

    yield factory
    for server, thread in servers:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestNormalization:
    def test_formatting_does_not_change_the_job_id(self):
        a = normalize_request({"kind": "validate",
                               "source": "x_na:=1;return 0;",
                               "target": "x_na   := 1; return 0;"})
        b = normalize_request({"kind": "validate",
                               "source": "x_na := 1;\nreturn 0;",
                               "target": "x_na := 1; return 0;"})
        assert a == b
        assert job_id_for(a) == job_id_for(b)

    def test_unknown_kind_is_a_400(self):
        with pytest.raises(RequestError) as excinfo:
            normalize_request({"kind": "frobnicate"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown-kind"

    def test_oversized_program_is_a_413(self):
        huge = "x_na := 1; " * 10_000 + "return 0;"
        with pytest.raises(RequestError) as excinfo:
            normalize_request({"kind": "validate", "source": huge,
                               "target": "return 0;"},
                              max_program_bytes=1024)
        assert excinfo.value.status == 413
        assert excinfo.value.code == "program-too-large"

    def test_unparseable_program_is_a_400_not_a_traceback(self):
        with pytest.raises(RequestError) as excinfo:
            normalize_request({"kind": "validate", "source": "x := (",
                               "target": "return 0;"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad-program"


class TestServiceEngine:
    def test_validate_job_end_to_end(self, service):
        svc = service()
        job, served = svc.submit(VALIDATE_SPEC)
        assert served == "queue"
        finished = svc.wait(job.id, timeout=120.0)
        assert finished.state == "done"
        assert finished.result["command"] == "validate"
        assert finished.result["valid"] is True

    def test_event_stream_is_one_valid_repro_events_stream(self, service):
        """Meta first, monotonic seq, result + stream-end present —
        across the submit/start/complete hand-offs there must be exactly
        one stream, not one per phase."""
        svc = service()
        job, _ = svc.submit(VALIDATE_SPEC)
        svc.wait(job.id, timeout=120.0)
        lines, _cursor, ended = svc.read_events(job.id, timeout=30.0)
        assert ended
        events = [json.loads(line) for line in lines]
        assert validate_events(events) == []
        kinds = [event.get("name") or event["ev"] for event in events]
        assert kinds[0] == "meta"
        assert "result" in kinds
        assert kinds[-1] == "stream-end"

    def test_parallel_identical_submissions_share_one_job(self, service):
        """The dedup gate under contention: N racing submissions of the
        same request must collapse onto a single job id and a single
        execution."""
        svc = service()
        results = []
        barrier = threading.Barrier(8)

        def submitter():
            barrier.wait()
            results.append(svc.submit(VALIDATE_SPEC))

        threads = [threading.Thread(target=submitter) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = {job.id for job, _ in results}
        assert len(ids) == 1
        assert sum(1 for _, served in results if served == "queue") == 1
        svc.wait(ids.pop(), timeout=120.0)
        assert svc.executed == 1
        assert svc.deduped == 7

    def test_warm_restart_serves_from_the_verdict_store(self, service,
                                                        tmp_path):
        """A new service over the same store directory answers without
        executing — the verdict survives the process boundary."""
        store_dir = str(tmp_path / "persistent")
        cold = service(store_dir=store_dir)
        job, _ = cold.submit(VALIDATE_SPEC)
        result = cold.wait(job.id, timeout=120.0).result
        cold.shutdown(drain=True)

        warm = service(store_dir=store_dir)
        hit, served = warm.submit(VALIDATE_SPEC)
        assert served == "store"
        assert hit.cached is True
        assert hit.state == "done"
        assert hit.result == result
        assert warm.executed == 0

    def test_spawn_pool_jobs2_with_store_contention(self, service):
        """Several distinct jobs through the 2-worker spawn pool, all
        writing the shared verdict store; every verdict must land and
        re-submission must be answered from the store."""
        svc = service(jobs=2)
        names = [case.name for case in ALL_TRANSFORMATION_CASES[:6]]
        jobs = [svc.submit({"kind": "litmus", "case": name})[0]
                for name in names]
        for job in jobs:
            assert svc.wait(job.id, timeout=300.0).state == "done"
        assert svc.executed == len(names)
        stats = svc.store.stats()
        assert stats["writes"] == len(names)
        for name in names:
            _, served = svc.submit({"kind": "litmus", "case": name})
            assert served == "store"

    def test_shutdown_drains_inflight_jobs(self, service):
        """Every accepted job finishes before shutdown returns; intake
        closes immediately (late submissions raise ServiceClosed)."""
        svc = service()
        jobs = [svc.submit({"kind": "litmus", "case": case.name})[0]
                for case in ALL_TRANSFORMATION_CASES[:4]]
        svc.shutdown(drain=True, timeout=300.0)
        for job in jobs:
            assert job.state == "done"
        with pytest.raises(ServiceClosed):
            svc.submit(VALIDATE_SPEC)

    def test_store_disabled_still_serves(self, service):
        svc = service(store_dir="off")
        assert svc.store is None
        job, served = svc.submit(VALIDATE_SPEC)
        assert served == "queue"
        assert svc.wait(job.id, timeout=120.0).state == "done"
        # Without a store the only cache is live dedup, not verdicts.
        _, served = svc.submit(VALIDATE_SPEC)
        assert served == "store"  # finished registry entry answers


class TestHTTPFrontEnd:
    def _raw(self, base, method="POST", path="/v1/jobs", data=b"",
             headers=None):
        """One raw request; returns (status, parsed JSON body)."""
        req = urllib.request.Request(base + path, data=data,
                                     headers=headers or {}, method=method)
        try:
            with urllib.request.urlopen(req, timeout=30.0) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_version_health_check(self, live):
        base, _svc = live()
        body = client.request(base, "GET", "/v1/version")
        assert body["service"] == "repro-serve/1"
        assert body["kinds"] == ["adequacy", "explore", "litmus",
                                 "validate"]

    def test_malformed_json_is_a_400_error_body(self, live):
        base, _svc = live()
        status, body = self._raw(base, data=b"{not json",
                                 headers={"Content-Length": "9"})
        assert status == 400
        assert body["schema"] == "repro-error/1"
        assert body["error"] == "bad-json"
        assert "Traceback" not in json.dumps(body)

    def test_unknown_kind_is_a_400_error_body(self, live):
        base, _svc = live()
        with pytest.raises(client.ServiceError) as excinfo:
            client.submit(base, {"kind": "frobnicate"})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown-kind"

    def test_oversized_body_is_a_413(self, live):
        base, _svc = live(max_body_bytes=64)
        with pytest.raises(client.ServiceError) as excinfo:
            client.submit(base, {"kind": "validate",
                                 "source": "x_na := 1; " * 32
                                           + "return 0;",
                                 "target": "return 0;"})
        assert excinfo.value.status == 413
        assert excinfo.value.code == "body-too-large"

    def test_unknown_job_is_a_404(self, live):
        base, _svc = live()
        with pytest.raises(client.ServiceError) as excinfo:
            client.request(base, "GET", "/v1/jobs/j-doesnotexist")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown-job"

    def test_unsupported_method_is_json_not_html(self, live):
        base, _svc = live()
        status, body = self._raw(base, method="DELETE",
                                 path="/v1/version")
        assert status in (405, 501)
        assert body["schema"] == "repro-error/1"

    def test_submit_wait_and_stream(self, live):
        base, _svc = live()
        submission = client.submit(base, VALIDATE_SPEC)
        assert submission["state"] in ("queued", "running", "done")
        status = client.wait_job(base, submission["job"], timeout=120.0)
        assert status["state"] == "done"
        assert status["result"]["valid"] is True
        sink = io.StringIO()
        assert client.stream_events(base, submission["job"],
                                    out=sink) > 0
        events = [json.loads(line)
                  for line in sink.getvalue().splitlines()]
        assert validate_events(events) == []
        assert events[-1]["ev"] == "stream-end"

    def test_litmus_catalog_is_byte_identical_to_the_cli(self, live,
                                                         capsys):
        """The CI hard gate, in-process: the service-backed catalog
        sweep renders exactly the bytes of ``repro litmus --format
        json`` (CI smoke repeats this over HTTP for the extended
        catalog, cold and warm)."""
        base, _svc = live(jobs=2)
        stats: dict = {}
        sink = io.StringIO()
        assert client.run_litmus(base, extended=False, as_json=True,
                                 out=sink, cache_stats=stats) == 0
        assert stats["total"] == len(ALL_TRANSFORMATION_CASES)
        assert stats["cached"] == 0
        assert cli_main(["litmus", "--format", "json"]) == 0
        assert sink.getvalue() == capsys.readouterr().out

        # The warm pass is answered from the verdict store — and still
        # renders the same bytes.
        warm_stats: dict = {}
        warm_sink = io.StringIO()
        assert client.run_litmus(base, extended=False, as_json=True,
                                 out=warm_sink,
                                 cache_stats=warm_stats) == 0
        assert warm_stats["hit_rate"] == 1.0
        assert warm_sink.getvalue() == sink.getvalue()

    def test_warm_batch_reports_store_hits(self, live):
        base, _svc = live()
        specs = [{"kind": "litmus", "case": case.name}
                 for case in ALL_TRANSFORMATION_CASES[:4]]
        cold = client.submit_batch(base, specs)
        for entry in cold["jobs"]:
            client.wait_job(base, entry["job"], timeout=300.0)
        assert cold["cached"] == 0
        warm = client.submit_batch(base, specs)
        assert warm["cached"] == warm["total"] == len(specs)
        for entry in warm["jobs"]:
            assert entry["cached"] is True
            assert entry["served_from"] == "store"

    def test_closed_service_maps_to_503_shutting_down(self, live):
        """Late submissions while the engine drains: the listener is
        still up, so the refusal must be a 503 error body, never a
        hang or a traceback."""
        base, svc = live()
        submission = client.submit(base, VALIDATE_SPEC)
        svc.shutdown(drain=True, timeout=300.0)
        assert svc.get(submission["job"]).state == "done"
        with pytest.raises(client.ServiceError) as excinfo:
            client.submit(base, VALIDATE_SPEC)
        assert excinfo.value.status == 503
        assert excinfo.value.code == "shutting-down"

    def test_shutdown_endpoint_drains_and_stops(self, live):
        base, svc = live()
        submission = client.submit(base, VALIDATE_SPEC)
        assert client.shutdown(base)["shutting_down"] is True
        # The accepted job still finishes (drain), then intake closes.
        job = svc.wait(submission["job"], timeout=300.0)
        assert job.state == "done"
        deadline = 200
        while not svc.stats()["closed"] and deadline:
            deadline -= 1
            threading.Event().wait(0.05)
        assert svc.stats()["closed"] is True


class TestVerdictStore:
    def test_concurrent_writers_one_directory(self, tmp_path):
        """Two store handles (= two service processes) interleave writes
        into one directory; a fresh handle sees every verdict."""
        directory = str(tmp_path / "shared")
        a, b = VerdictStore(directory), VerdictStore(directory)
        digests = []
        for index in range(16):
            canonical = {"kind": "validate", "n": index}
            digest = request_digest(canonical)
            digests.append(digest)
            (a if index % 2 else b).put(digest, "validate",
                                        {"n": index})
        a.close(), b.close()
        fresh = VerdictStore(directory)
        try:
            for index, digest in enumerate(digests):
                assert fresh.get(digest) == {"n": index}
        finally:
            fresh.close()

    def test_corrupt_segment_line_is_skipped_not_fatal(self, tmp_path):
        directory = tmp_path / "corrupt"
        store = VerdictStore(str(directory))
        digest = request_digest({"kind": "validate", "ok": True})
        store.put(digest, "validate", {"ok": True})
        store.close()
        segment = next(directory.glob("*.vseg"))
        with open(segment, "a") as handle:
            handle.write("{truncated garbage\n")
        reopened = VerdictStore(str(directory))
        try:
            assert reopened.get(digest) == {"ok": True}
        finally:
            reopened.close()
