"""Tests for PS^na messages and memory."""

from fractions import Fraction

import pytest

from repro.psna import Memory, Message, NAMessage, View, ZERO


def test_initial_memory_has_zero_messages():
    memory = Memory.initial(["x", "y"])
    assert len(memory) == 2
    for message in memory:
        assert message.ts == ZERO
        assert message.value == 0
        assert message.view is None  # ⊥


def test_add_and_order():
    memory = Memory.initial(["x"])
    memory = memory.add(Message("x", Fraction(2), 1, None))
    memory = memory.add(Message("x", Fraction(1), 5, None))
    assert [m.value for m in memory.at("x")] == [0, 5, 1]


def test_timestamp_collision_rejected():
    memory = Memory.initial(["x"])
    with pytest.raises(ValueError, match="collision"):
        memory.add(Message("x", ZERO, 1, None))


def test_na_message_has_bottom_view():
    na = NAMessage("x", Fraction(1))
    assert na.view is None


def test_proper_at_filters_na_messages():
    memory = Memory.initial(["x"]).add(NAMessage("x", Fraction(1)))
    assert len(memory.at("x")) == 2
    assert len(memory.proper_at("x")) == 1


def test_replace_for_lowering():
    memory = Memory.initial(["x"])
    promise = Message("x", Fraction(1), 1, View.singleton("x", Fraction(1)))
    memory = memory.add(promise)
    lowered = Message("x", Fraction(1), 1, None)
    replaced = memory.replace(promise, lowered)
    assert lowered in replaced and promise not in replaced


def test_replace_missing_message_rejected():
    memory = Memory.initial(["x"])
    ghost = Message("x", Fraction(9), 1, None)
    with pytest.raises(ValueError):
        memory.replace(ghost, ghost)


def test_fresh_slots_cover_gaps_and_end():
    memory = Memory.initial(["x"]) \
        .add(Message("x", Fraction(1), 1, None)) \
        .add(Message("x", Fraction(2), 2, None))
    slots = list(memory.fresh_slots("x", ZERO))
    # between 0-1, between 1-2, and past 2
    assert len(slots) == 3
    assert all(slot not in memory.timestamps("x") for slot in slots)
    assert any(slot > Fraction(2) for slot in slots)


def test_fresh_slots_respect_lower_bound():
    memory = Memory.initial(["x"]).add(Message("x", Fraction(2), 1, None))
    slots = list(memory.fresh_slots("x", Fraction(1)))
    assert all(slot > Fraction(1) for slot in slots)


def test_max_ts():
    memory = Memory.initial(["x"]).add(Message("x", Fraction(5), 1, None))
    assert memory.max_ts("x") == 5
    assert memory.max_ts("unknown") == ZERO


def test_locations():
    memory = Memory.initial(["x", "y"])
    assert memory.locations() == frozenset({"x", "y"})
