"""Tests for SEQ behaviors (Def 2.1) including Example 2.2."""

from repro.lang import UNDEF, parse
from repro.seq import (
    Behavior,
    Bot,
    Prt,
    RlxWriteLabel,
    SeqConfig,
    SeqUniverse,
    Trm,
    behavior_leq,
    enumerate_behaviors,
    iter_initial_configs,
)
from repro.util.fmap import FrozenMap


def behaviors(source, perms, memory, universe, **kwargs):
    cfg = SeqConfig.initial(parse(source), frozenset(perms), memory)
    return enumerate_behaviors(cfg, universe, **kwargs)


def test_example_2_2_with_permission():
    """Example 2.2: behaviors of  x_rlx := 1; y_na := 2; return 3."""
    universe = SeqUniverse(("y",), (1, 2, 3))
    memory = {"y": 0}
    got = behaviors("x_rlx := 1; y_na := 2; return 3;", {"y"}, memory,
                    universe)
    wrlx = RlxWriteLabel("x", 1)
    assert Behavior((), Prt(frozenset())) in got
    assert Behavior((wrlx,), Prt(frozenset())) in got
    assert Behavior((wrlx,), Prt(frozenset({"y"}))) in got
    terminating = Behavior(
        (wrlx,), Trm(3, frozenset({"y"}), FrozenMap.of({"y": 2})))
    assert terminating in got
    # exactly one terminating behavior
    assert [b for b in got if isinstance(b.result, Trm)] == [terminating]


def test_example_2_2_without_permission():
    """Without permission on y, the only terminating behavior is ⊥."""
    universe = SeqUniverse(("y",), (1, 2, 3))
    got = behaviors("x_rlx := 1; y_na := 2; return 3;", set(), {"y": 0},
                    universe)
    wrlx = RlxWriteLabel("x", 1)
    finishing = [b for b in got if not isinstance(b.result, Prt)]
    assert finishing == [Behavior((wrlx,), Bot())]


def test_behavior_sets_are_trace_prefix_closed():
    universe = SeqUniverse(("x",), (0, 1))
    got = behaviors("x_na := 1; a := y_rlx; x_na := 0; return a;", {"x"},
                    {"x": 0}, universe)
    traces = {b.trace for b in got}
    for trace in traces:
        assert trace[:-1] in traces or trace == ()


class TestBehaviorLeq:
    empty = frozenset()
    mem0 = FrozenMap.of({"x": 0})
    mem_undef = FrozenMap.of({"x": UNDEF})

    def test_trm_value_order(self):
        tgt = Behavior((), Trm(1, self.empty, self.mem0))
        src = Behavior((), Trm(UNDEF, self.empty, self.mem0))
        assert behavior_leq(tgt, src)
        assert not behavior_leq(src, tgt)

    def test_trm_written_subset(self):
        tgt = Behavior((), Trm(0, self.empty, self.mem0))
        src = Behavior((), Trm(0, frozenset({"x"}), self.mem0))
        assert behavior_leq(tgt, src)
        assert not behavior_leq(src, tgt)

    def test_trm_memory_order(self):
        tgt = Behavior((), Trm(0, self.empty, self.mem0))
        src = Behavior((), Trm(0, self.empty, self.mem_undef))
        assert behavior_leq(tgt, src)
        assert not behavior_leq(src, tgt)

    def test_prt_matches_prt_only(self):
        tgt = Behavior((), Prt(self.empty))
        src_trm = Behavior((), Trm(0, self.empty, self.mem0))
        assert not behavior_leq(tgt, src_trm)
        assert behavior_leq(tgt, Behavior((), Prt(frozenset({"x"}))))

    def test_source_bottom_matches_extensions(self):
        wrlx = RlxWriteLabel("x", 1)
        src = Behavior((wrlx,), Bot())
        tgt = Behavior((wrlx, RlxWriteLabel("y", 2)), Trm(0, self.empty,
                                                          self.mem0))
        assert behavior_leq(tgt, src)
        # but the matched prefix must be related
        src_other = Behavior((RlxWriteLabel("x", 2),), Bot())
        assert not behavior_leq(tgt, src_other)

    def test_trace_value_order_in_writes(self):
        tgt = Behavior((RlxWriteLabel("x", 1),), Prt(self.empty))
        src = Behavior((RlxWriteLabel("x", UNDEF),), Prt(self.empty))
        assert behavior_leq(tgt, src)
        assert not behavior_leq(src, tgt)

    def test_unequal_trace_lengths_unrelated(self):
        tgt = Behavior((RlxWriteLabel("x", 1),), Prt(self.empty))
        src = Behavior((), Prt(self.empty))
        assert not behavior_leq(tgt, src)


def test_iter_initial_configs_counts():
    universe = SeqUniverse(("x", "y"), (0, 1))
    program = parse("return 0;")
    configs = list(iter_initial_configs(program, universe))
    # 4 permission sets x 4 memories
    assert len(configs) == 16
    perms = {cfg.perms for cfg in configs}
    assert len(perms) == 4


def test_enumeration_respects_max_steps():
    universe = SeqUniverse(("x",), (0, 1))
    got = behaviors("while 1 { a := y_rlx; }", set(), {"x": 0}, universe,
                    max_steps=6)
    assert all(isinstance(b.result, Prt) for b in got)
    assert max(len(b.trace) for b in got) <= 6
