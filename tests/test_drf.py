"""Empirical DRF guarantees (§5) and the SC / promise-free baselines."""

import pytest

from repro.lang import UNDEF, parse
from repro.psna import (
    PsConfig,
    explore,
    explore_sc,
    promise_free_config,
)

FULL = PsConfig(promise_budget=1)


def programs(*sources):
    return [parse(source) for source in sources]


class TestScMachine:
    def test_sequential_program(self):
        result = explore_sc(programs("a := x_na; x_na := a + 1; return a;"))
        assert result.returns() == {(0,)}
        assert not result.racy

    def test_interleavings(self):
        result = explore_sc(programs(
            "x_rlx := 1; a := y_rlx; return a;",
            "y_rlx := 1; b := x_rlx; return b;"))
        # SC forbids the (0,0) outcome of store buffering
        assert (0, 0) not in result.returns()
        assert {(0, 1), (1, 0), (1, 1)} <= result.returns()

    def test_race_detection(self):
        racy = explore_sc(programs("x_na := 1; return 0;",
                                   "a := x_na; return a;"))
        assert racy.racy
        quiet = explore_sc(programs(
            "x_na := 1; y_rel := 1; return 0;",
            "a := y_acq; if a == 1 { b := x_na; return b; } return 9;"))
        assert not quiet.racy

    def test_ub_propagates(self):
        result = explore_sc(programs("abort;"))
        assert result.has_bottom()

    def test_syscalls_recorded(self):
        result = explore_sc(programs("print(2); return 0;"))
        behaviors = {b.syscalls for b in result.behaviors}
        assert (("print", 2),) in behaviors


class TestDrfGuarantee:
    """Race-free programs get SC semantics in PS^na (empirically)."""

    RACE_FREE = [
        ("x_na := 1; y_rel := 1; return 0;",
         "a := y_acq; if a == 1 { b := x_na; return b; } return 9;"),
        ("a := cas_acq_rel(l_rlx, 0, 1); if a == 0 { x_na := 1; } return a;",
         "b := cas_acq_rel(l_rlx, 0, 1); if b == 0 { x_na := 2; } return b;"),
        ("x_rel := 1; return 0;", "a := x_acq; return a;"),
    ]

    @pytest.mark.parametrize("pair", RACE_FREE,
                             ids=["mp", "cas-lock", "rel-acq"])
    def test_race_free_matches_sc(self, pair):
        threads = programs(*pair)
        sc = explore_sc(threads)
        assert not sc.racy, "test premise: SC-race-free"
        ps = explore(threads, FULL)
        assert ps.complete and sc.complete
        assert ps.returns() == sc.returns()
        assert not ps.has_bottom()

    def test_racy_program_may_differ_from_sc(self):
        threads = programs("x_na := 1; return 0;", "a := x_na; return a;")
        sc = explore_sc(threads)
        assert sc.racy
        ps = explore(threads, FULL)
        assert (0, UNDEF) in ps.returns()
        assert (0, UNDEF) not in sc.returns()


class TestPromiseFree:
    def test_promise_free_config(self):
        config = promise_free_config()
        assert not config.allow_promises
        assert config.promise_budget == 0

    def test_promise_free_subsumed_by_full(self):
        threads = programs("a := x_rlx; y_rlx := a; return a;",
                           "b := y_rlx; x_rlx := 1; return b;")
        pf = explore(threads, promise_free_config())
        full = explore(threads, FULL)
        assert pf.returns() <= full.returns()
        assert (1, 1) in full.returns() - pf.returns()

    def test_promise_free_equals_full_without_rlx_cycles(self):
        threads = programs(
            "x_na := 1; y_rel := 1; return 0;",
            "a := y_acq; if a == 1 { b := x_na; return b; } return 9;")
        pf = explore(threads, promise_free_config())
        full = explore(threads, FULL)
        assert pf.returns() == full.returns()
