"""Fence extension cases: SEQ fences mirror acquire reads / release
writes, matching the Coq development's broader feature set."""

import pytest

from repro.litmus import FENCE_CASES, case_by_name
from repro.psna import PsConfig, check_psna_refinement
from repro.seq import check_simple_refinement, check_transformation


@pytest.mark.parametrize("case", FENCE_CASES, ids=lambda c: c.name)
def test_fence_case_verdict(case):
    verdict = check_transformation(case.source, case.target)
    assert verdict.valid == case.expected_valid, f"{case.name}: {verdict!r}"
    assert verdict.notion == (case.expected if case.expected_valid
                              else "none")


def test_fence_pair_matches_access_pair():
    """A rel-acq fence pair blocks SLF exactly like a rel-acq access pair."""
    fence = case_by_name("slf-across-fence-pair")
    access = case_by_name("slf-across-rel-acq-pair")
    assert not check_transformation(fence.source, fence.target).valid
    assert not check_transformation(access.source, access.target).valid


def test_rel_fence_needs_advanced_like_rel_write(seq_limits=None):
    fence = case_by_name("write-into-rel-fence")
    assert not check_simple_refinement(fence.source, fence.target).refines
    verdict = check_transformation(fence.source, fence.target)
    assert verdict.notion == "advanced"


class TestFencesInPsna:
    """The fence cases are consistent with PS^na under contexts."""

    @pytest.mark.parametrize(
        "name", [c.name for c in FENCE_CASES if c.expected_valid])
    def test_valid_fence_cases_refine_in_psna(self, name):
        from repro.adequacy import check_adequacy

        case = case_by_name(name)
        report = check_adequacy(case.source, case.target,
                                config=PsConfig(allow_promises=False))
        assert report.adequate, (name, report)

    def test_fence_message_passing_end_to_end(self):
        """rel/acq fences synchronize like rel/acq accesses in PS^na."""
        from repro.lang import parse
        from repro.psna import explore

        result = explore([
            parse("x_na := 1; fence_rel; y_rlx := 1; return 0;"),
            parse("a := y_rlx; fence_acq; if a == 1 { b := x_na; "
                  "return b; } return 9;")],
            PsConfig(allow_promises=False))
        from repro.lang import UNDEF

        assert (0, 1) in result.returns()
        assert (0, UNDEF) not in result.returns()
        assert not result.has_bottom()
