"""PS^na litmus tests: classic shapes plus the paper's Ex 5.1, App B, App C."""

import pytest

from repro.lang import Const, Freeze, Seq, UNDEF, parse
from repro.psna import PsConfig, explore

PF = PsConfig(allow_promises=False)
FULL = PsConfig(promise_budget=1)


def returns(programs, config=PF, **kwargs):
    result = explore([parse(p) if isinstance(p, str) else p
                      for p in programs], config, **kwargs)
    return result


class TestClassicLitmus:
    def test_message_passing_release_acquire(self):
        """MP with rel/acq: the reader synchronizes; no stale x, no race."""
        result = returns([
            "x_na := 1; y_rel := 1; return 0;",
            "a := y_acq; if a == 1 { b := x_na; return b; } return 9;"])
        assert result.returns() == {(0, 1), (0, 9)}
        assert not result.has_bottom()

    def test_message_passing_relaxed_races(self):
        """MP with rlx: no synchronization, the na read may race."""
        result = returns([
            "x_na := 1; y_rlx := 1; return 0;",
            "a := y_rlx; if a == 1 { b := x_na; return b; } return 9;"])
        assert (0, UNDEF) in result.returns()

    def test_store_buffering_relaxed(self):
        result = returns([
            "x_rlx := 1; a := y_rlx; return a;",
            "y_rlx := 1; b := x_rlx; return b;"])
        assert result.returns() == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_load_buffering_needs_promises(self):
        programs = ["a := x_rlx; y_rlx := a; return a;",
                    "b := y_rlx; x_rlx := 1; return b;"]
        assert (1, 1) not in returns(programs, PF).returns()
        assert (1, 1) in returns(programs, FULL).returns()

    def test_load_buffering_out_of_thin_air_excluded(self):
        """LB with data dependence both ways: certification forbids 1."""
        programs = ["a := x_rlx; y_rlx := a; return a;",
                    "b := y_rlx; x_rlx := b; return b;"]
        result = returns(programs, FULL)
        assert (1, 1) not in result.returns()
        assert (0, 0) in result.returns()

    def test_coherence_read_read(self):
        """CoRR: after reading the new value, cannot read the old one."""
        result = returns([
            "x_rlx := 1; return 0;",
            "a := x_rlx; b := x_rlx; return a * 10 + b;"])
        assert (0, 10) not in result.returns()
        assert (0, 11) in result.returns()
        assert (0, 1) in result.returns()  # a=0, b=1

    def test_write_write_race_is_ub(self):
        result = returns(["x_na := 1; return 0;", "x_na := 2; return 0;"])
        assert result.has_bottom()

    def test_write_read_race_gives_undef(self):
        result = returns(["x_na := 1; return 0;", "a := x_na; return a;"])
        assert (0, UNDEF) in result.returns()
        assert not result.has_bottom()

    def test_mixed_atomic_nonatomic_race(self):
        """PS^na allows mixing; an rlx read races only with NA messages."""
        result = returns(["x_na := 1; return 0;", "a := x_rlx; return a;"])
        # the na write publishes a proper message; the atomic read may
        # race with an NAMsg only when the writer emits one
        assert (0, 0) in result.returns()
        assert (0, 1) in result.returns()

    def test_sc_fences_forbid_store_buffering(self):
        result = returns([
            "x_rlx := 1; fence_sc; a := y_rlx; return a;",
            "y_rlx := 1; fence_sc; b := x_rlx; return b;"])
        assert (0, 0) not in result.returns()

    def test_rel_acq_fences_give_message_passing(self):
        result = returns([
            "x_na := 1; fence_rel; y_rlx := 1; return 0;",
            "a := y_rlx; fence_acq; if a == 1 { b := x_na; return b; } "
            "return 9;"])
        assert (0, 1) in result.returns()
        assert (0, UNDEF) not in result.returns()

    def test_rmw_mutual_exclusion(self):
        """Two CAS-based lock acquisitions cannot both succeed."""
        result = returns([
            "a := cas_acq_rel(l_rlx, 0, 1); return a;",
            "b := cas_acq_rel(l_rlx, 0, 1); return b;"])
        # a CAS returns the read value (0 on success); both reading 0
        # would need both to write adjacently after ts 0 — impossible.
        assert (0, 0) not in result.returns()

    def test_fadd_counters_serialize(self):
        result = returns([
            "a := fadd_rlx_rlx(c_rlx, 1); return a;",
            "b := fadd_rlx_rlx(c_rlx, 1); return b;"])
        assert result.returns() == {(0, 1), (1, 0)}


class TestExample51:
    PROGRAMS = ["a := x_na; y_rlx := 1; return a;",
                "b := y_rlx; if b == 1 { x_na := 1; } return b;"]

    def test_racy_undef_requires_promises(self):
        assert not any(r[0] is UNDEF
                       for r in returns(self.PROGRAMS, PF).returns())

    def test_promise_enables_racy_undef_read(self):
        """Ex 5.1: promise y=1, read x racily (undef), fulfill."""
        result = returns(self.PROGRAMS, FULL)
        assert (UNDEF, 1) in result.returns()
        assert result.complete


def _freeze_undef(reg="c"):
    return Freeze(reg, Const(UNDEF))


class TestAppendixB:
    """Multi-message na-writes justify splitting (Appendix B)."""

    PI1 = "a := x_na; y_rlx := a; return 0;"
    SRC = ("b := y_rlx; c := freeze(b); "
           "if c == 1 { x_na := 1; print(1); } else { x_na := 2; } "
           "return 0;")
    TGT = ("b := y_rlx; c := freeze(b); x_na := 2; "
           "if c == 1 { x_na := 1; print(1); } return 0;")
    CFG = PsConfig(promise_budget=1, values=(0, 1, 2))
    CFG_SINGLE = PsConfig(promise_budget=1, values=(0, 1, 2),
                          allow_na_intermediates=False)

    def test_source_prints_with_multi_message_na_writes(self):
        result = returns([self.PI1, self.SRC], self.CFG)
        assert (("print", 1),) in result.syscall_traces()

    def test_target_prints(self):
        result = returns([self.PI1, self.TGT], self.CFG)
        assert (("print", 1),) in result.syscall_traces()

    def test_source_cannot_print_with_single_message_na_writes(self):
        """Without the multi-message rule the optimization is unsound."""
        result = returns([self.PI1, self.SRC], self.CFG_SINGLE)
        assert (("print", 1),) not in result.syscall_traces()
        assert result.complete


class TestAppendixC:
    """PS^na disallows reordering a choice before a release write."""

    PI1 = "a := x_rlx; y_rlx := a; return 0;"
    REST = ("if b == 1 { c := y_rlx; if c == 1 { x_rlx := 1; print(1); } } "
            "else { x_rlx := 1; } return 0;")

    def _pi2(self, freeze_first):
        freeze = Freeze("b", Const(UNDEF))
        rel = parse("x_rel := 0;")
        rest = parse(self.REST)
        order = (freeze, rel, rest) if freeze_first else (rel, freeze, rest)
        return Seq.of(*order)

    def test_source_cannot_print(self):
        result = returns([self.PI1, self._pi2(freeze_first=True)], FULL)
        assert (("print", 1),) not in result.syscall_traces()
        assert result.complete

    def test_target_prints_after_reordering(self):
        result = returns([self.PI1, self._pi2(freeze_first=False)], FULL)
        assert (("print", 1),) in result.syscall_traces()


class TestReleaseSequences:
    """Same-thread release sequences (tview.rel in the full model)."""

    def test_rlx_overwrite_continues_release_sequence(self):
        result = returns([
            "x_na := 1; y_rel := 1; y_rlx := 2; return 0;",
            "a := y_acq; if a == 2 { b := x_na; return b; } return 9;"])
        assert (0, 1) in result.returns()
        assert (0, UNDEF) not in result.returns()

    def test_no_release_no_synchronization(self):
        result = returns([
            "x_na := 1; y_rlx := 2; return 0;",
            "a := y_acq; if a == 2 { b := x_na; return b; } return 9;"])
        assert (0, UNDEF) in result.returns()

    def test_release_fence_upgrades_relaxed_write(self):
        result = returns([
            "x_na := 1; fence_rel; y_rlx := 2; return 0;",
            "a := y_acq; if a == 2 { b := x_na; return b; } return 9;"])
        assert (0, 1) in result.returns()
        assert (0, UNDEF) not in result.returns()

    def test_release_sequence_is_per_location(self):
        # the release was to z, not y: a relaxed write to y is unordered
        result = returns([
            "x_na := 1; z_rel := 1; y_rlx := 2; return 0;",
            "a := y_acq; if a == 2 { b := x_na; return b; } return 9;"])
        assert (0, UNDEF) in result.returns()

    def test_rmw_continues_release_sequence(self):
        result = returns([
            "x_na := 1; y_rel := 1; return 0;",
            "f := fadd_rlx_rlx(y_rlx, 1); return f;",
            "a := y_acq; if a == 2 { b := x_na; return b; } return 9;"],
            PsConfig(allow_promises=False, max_states=400_000))
        assert (0, 1, 1) in result.returns()
        assert all(r[2] is not UNDEF for r in result.returns())
