"""Property tests for the delta-debugging shrinker.

The shrinker's contract (see :mod:`repro.fuzz.shrink`): the minimized
program still fails the same predicate, is never larger than the input,
and the loop terminates within the check budget.  We drive it both with
synthetic predicates (fast, exhaustive over random programs) and with a
real oracle failure from the injected-bug pipeline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import FuzzConfig, shrink_composition, shrink_program
from repro.fuzz.bugs import passes_with_injection
from repro.fuzz.campaign import _still_fails_factory
from repro.fuzz.shrink import statement_count
from repro.lang.ast import Store, node_count, walk
from repro.lang.parser import parse
from repro.lang.pretty import to_source
from repro.litmus.generator import GeneratorConfig, ProgramGenerator

SMALL = GeneratorConfig(na_locs=("x",), atomic_locs=("y",),
                        registers=("a", "b"), values=(0, 1))


def _random_program(seed, length=8):
    return ProgramGenerator(SMALL, seed).program(length)


class TestShrinkProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_shrunk_still_fails_and_is_no_larger(self, seed):
        """Core contract, with a cheap syntactic predicate: 'contains a
        store to x'.  The minimized program must keep the property and
        must not grow."""
        program = _random_program(seed)

        def still_fails(candidate):
            return any(isinstance(node, Store) and node.loc == "x"
                       for node in walk(candidate))

        if not still_fails(program):
            return  # predicate vacuous on this sample
        shrunk = shrink_program(program, still_fails)
        assert still_fails(shrunk)
        assert node_count(shrunk) <= node_count(program)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_shrink_terminates_within_budget(self, seed):
        program = _random_program(seed, length=10)
        calls = 0

        def always_fails(threads):
            nonlocal calls
            calls += 1
            return True

        minimized, checks = shrink_composition((program,), always_fails,
                                               max_checks=50)
        assert checks <= 50 + 1
        assert calls == checks
        assert node_count(minimized[0]) <= node_count(program)

    def test_crashing_predicate_treated_as_not_failing(self):
        program = parse("x_na := 1; x_na := 2; return 0;")

        def crashes_on_small(threads):
            if statement_count(threads[0]) < 3:
                raise RuntimeError("oracle crash")
            return True

        minimized, _ = shrink_composition((program,), crashes_on_small)
        # Crashing candidates are skipped, so the result still satisfies
        # the predicate without raising.
        assert crashes_on_small(minimized)

    def test_composition_shrinks_threads_independently(self):
        threads = (parse("x_na := 1; a := x_na; return a;"),
                   parse("y_rlx := 1; b := y_rlx; return b;"))

        def still_fails(candidate):
            return len(candidate) == 2  # structural: both threads exist

        minimized, _ = shrink_composition(threads, still_fails)
        assert len(minimized) == 2
        assert sum(node_count(t) for t in minimized) <= \
            sum(node_count(t) for t in threads)


class TestShrinkRealOracle:
    def test_minimizes_injected_dse_failure_to_litmus_size(self):
        """End to end over a real oracle: a bulky program whose broken-
        DSE rewrite is rejected by ``check_transformation`` shrinks to
        a handful of statements that still fail."""
        program = parse(
            "a := 0; y_rlx := 1; b := a + 1; y_rlx := 0; "
            "x_na := b; c := x_na; return c;")
        config = FuzzConfig()
        still_fails = _still_fails_factory(
            "opt", "dse-unguarded", config, "opt-seq-validate")
        assert still_fails((program,)), (
            "fixture must fail before shrinking: "
            + to_source(program))
        minimized, checks = shrink_composition(
            (program,), still_fails, max_checks=config.shrink_max_checks)
        assert still_fails(minimized)
        assert statement_count(minimized[0]) <= 6
        assert checks <= config.shrink_max_checks

    def test_stock_pipeline_has_nothing_to_shrink(self):
        """Sanity: the same fixture does *not* fail under the stock
        pipeline, so the injected failure is the mutant's doing."""
        program = parse(
            "a := 0; y_rlx := 1; b := a + 1; y_rlx := 0; "
            "x_na := b; c := x_na; return c;")
        still_fails = _still_fails_factory(
            "opt", "none", FuzzConfig(), "opt-seq-validate")
        assert not still_fails((program,))

    def test_injection_preserves_pass_order(self):
        stock = [name for name, _ in passes_with_injection("none")]
        mutant = [name for name, _ in
                  passes_with_injection("dse-unguarded")]
        assert stock == mutant
