"""Tests for PS^na machine steps, certification and canonicalization."""

from fractions import Fraction

from repro.lang import parse
from repro.lang.interp import WhileThread
from repro.psna import (
    Memory,
    Message,
    PsConfig,
    ThreadLts,
    View,
    canonical_key,
    certifiable,
    initial_state,
    machine_steps,
)

CFG = PsConfig(values=(0, 1), allow_promises=False)


class TestCertification:
    def test_empty_promises_certify_trivially(self):
        thread = ThreadLts(WhileThread.start(parse("return 0;")))
        assert certifiable(thread, Memory.initial(["x"]), CFG)

    def test_fulfillable_promise_certifies(self):
        promise = Message("x", Fraction(1), 1,
                          View.singleton("x", Fraction(1)))
        thread = ThreadLts(WhileThread.start(parse("x_rlx := 1; return 0;")),
                           promises=frozenset({promise}))
        memory = Memory.initial(["x"]).add(promise)
        assert certifiable(thread, memory, CFG)

    def test_wrong_value_promise_fails(self):
        promise = Message("x", Fraction(1), 7,
                          View.singleton("x", Fraction(1)))
        thread = ThreadLts(WhileThread.start(parse("x_rlx := 1; return 0;")),
                           promises=frozenset({promise}))
        memory = Memory.initial(["x"]).add(promise)
        assert not certifiable(thread, memory, CFG)

    def test_no_write_at_all_fails(self):
        promise = Message("x", Fraction(1), 1,
                          View.singleton("x", Fraction(1)))
        thread = ThreadLts(WhileThread.start(parse("return 0;")),
                           promises=frozenset({promise}))
        memory = Memory.initial(["x"]).add(promise)
        assert not certifiable(thread, memory, CFG)

    def test_conditional_fulfillment_certifies_via_some_path(self):
        # Certification may choose the branch that fulfills.
        promise = Message("x", Fraction(1), 1,
                          View.singleton("x", Fraction(1)))
        thread = ThreadLts(WhileThread.start(parse(
            "a := y_rlx; if a == 0 { x_rlx := 1; } return 0;")),
            promises=frozenset({promise}))
        memory = Memory.initial(["x", "y"]).add(promise)
        assert certifiable(thread, memory, CFG)

    def test_ub_path_does_not_certify(self):
        promise = Message("x", Fraction(1), 1,
                          View.singleton("x", Fraction(1)))
        thread = ThreadLts(WhileThread.start(parse(
            "a := 1 / 0; x_rlx := 1; return 0;")),
            promises=frozenset({promise}))
        memory = Memory.initial(["x"]).add(promise)
        assert not certifiable(thread, memory, CFG)


class TestMachineSteps:
    def test_interleaving_of_two_threads(self):
        state = initial_state(
            [parse("x_rlx := 1; return 0;"), parse("y_rlx := 1; return 0;")],
            CFG)
        successors = list(machine_steps(state, CFG))
        assert len(successors) == 2  # either thread may move

    def test_failure_step_propagates_bottom(self):
        state = initial_state([parse("abort;")], CFG)
        (failure,) = list(machine_steps(state, CFG))
        assert failure.bottom

    def test_bottom_state_has_no_steps(self):
        state = initial_state([parse("abort;")], CFG)
        (failure,) = list(machine_steps(state, CFG))
        assert list(machine_steps(failure, CFG)) == []

    def test_syscall_recorded(self):
        state = initial_state([parse("print(3); return 0;")], CFG)
        (after,) = list(machine_steps(state, CFG))
        assert after.syscalls == (("print", 3),)

    def test_sc_fence_joins_global_view(self):
        state = initial_state(
            [parse("x_rlx := 1; fence_sc; return 0;"),
             parse("fence_sc; a := x_rlx; return a;")], CFG)
        # run thread 0 fully: write then fence
        current = state
        for _ in range(2):
            current = next(s for s in machine_steps(current, CFG)
                           if s.threads[0] is not current.threads[0])
        assert current.sc_view.get("x") > 0
        # thread 1's fence picks the global view up
        after = next(s for s in machine_steps(current, CFG)
                     if s.threads[1] is not current.threads[1])
        assert after.threads[1].view.get("x") > 0

    def test_uncertifiable_steps_pruned(self):
        # A promise that can never be fulfilled must not be taken.
        config = PsConfig(values=(7,), promise_budget=1,
                          promise_undef_values=False,
                          allow_na_message_promises=False)
        state = initial_state([parse("x_rlx := 1; return 0;")], config)
        promised = [s for s in machine_steps(state, config)
                    if s.threads[0].promises]
        for successor in promised:
            (promise,) = successor.threads[0].promises
            assert promise.value == 7  # only value in the universe
        # value-7 promises cannot be fulfilled by a write of 1... so none
        assert promised == []


class TestCanonicalKey:
    def test_timestamp_renaming_invariance(self):
        program = parse("return 0;")
        mem_a = Memory.initial(["x"]).add(Message("x", Fraction(1), 1, None))
        mem_b = Memory.initial(["x"]).add(
            Message("x", Fraction(99, 7), 1, None))
        thread = ThreadLts(WhileThread.start(program))
        from repro.psna import MachineState

        state_a = MachineState((thread,), mem_a)
        state_b = MachineState((thread,), mem_b)
        assert canonical_key(state_a) == canonical_key(state_b)

    def test_views_follow_renaming(self):
        program = parse("return 0;")
        from repro.psna import MachineState

        def state_with(ts):
            memory = Memory.initial(["x"]).add(Message("x", ts, 1, None))
            thread = ThreadLts(WhileThread.start(program),
                               view=View.singleton("x", ts))
            return MachineState((thread,), memory)

        assert canonical_key(state_with(Fraction(1))) == canonical_key(
            state_with(Fraction(5)))

    def test_distinct_values_distinguished(self):
        program = parse("return 0;")
        from repro.psna import MachineState

        def state_with(value):
            memory = Memory.initial(["x"]).add(
                Message("x", Fraction(1), value, None))
            return MachineState(
                (ThreadLts(WhileThread.start(program)),), memory)

        assert canonical_key(state_with(1)) != canonical_key(state_with(2))

    def test_bottom_state_key(self):
        from repro.psna import MachineState

        state = MachineState((), Memory.initial([]), bottom=True,
                             syscalls=(("print", 1),))
        assert canonical_key(state)[0] == "⊥"


class TestCertificationConfig:
    def test_cert_promises_flag(self):
        """Certification may be allowed to make nested promises."""
        from dataclasses import replace as dreplace
        from fractions import Fraction

        promise = Message("x", Fraction(1), 1,
                          View.singleton("x", Fraction(1)))
        thread = ThreadLts(
            WhileThread.start(parse("x_rlx := 1; return 0;")),
            promises=frozenset({promise}), promise_budget=1,
            promise_locs=("x",))
        memory = Memory.initial(["x"]).add(promise)
        base = PsConfig(values=(0, 1), promise_budget=1)
        assert certifiable(thread, memory, base)
        permissive = dreplace(base, cert_promises=True)
        assert certifiable(thread, memory, permissive)

    def test_capped_certification_blocks_rmw_dependent_promise(self):
        """PS2-style cap: a promise cannot rely on winning a future CAS."""
        from dataclasses import replace as dreplace
        from fractions import Fraction

        promise = Message("x", Fraction(1), 1,
                          View.singleton("x", Fraction(1)))
        program = parse(
            "a := cas_rlx_rlx(l_rlx, 0, 1); if a == 0 { x_rlx := 1; } "
            "return 0;")
        thread = ThreadLts(WhileThread.start(program),
                           promises=frozenset({promise}))
        memory = Memory.initial(["x", "l"]).add(promise)
        capped = PsConfig(values=(0, 1))
        assert not certifiable(thread, memory, capped)
        uncapped = dreplace(capped, capped_certification=False)
        assert certifiable(thread, memory, uncapped)
