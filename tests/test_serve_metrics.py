"""The service telemetry layer: deterministic metrics and request
traces.

Unit coverage for :mod:`repro.serve.metrics` (fixed-bucket histograms,
snapshot merging, the Prometheus exposition round-trip, the ``repro
top`` frame) and :mod:`repro.obs.telemetry` (trace ids, span records,
the per-job trace).  The byte-identity claims the service makes —
snapshots merge commutatively, quantiles are exact functions of the
integer bucket counts — are pinned here with dyadic-rational
observations so float addition cannot smuggle in order dependence.
"""

import json

import pytest

from repro.obs import telemetry
from repro.serve.metrics import (
    LATENCY_BUCKETS_S,
    SERVEMETRICS_SCHEMA,
    BucketHistogram,
    ServiceMetrics,
    dump_servemetrics,
    exposition_problems,
    metrics_rows,
    parse_exposition,
    render_exposition,
    render_top,
    sample_value,
    validate_servemetrics,
)

#: Dyadic rationals: exactly representable, so float sums are
#: associative and the byte-identity assertions below are honest.
DYADIC = [0.0005, 0.001, 0.001953125, 0.0078125, 0.015625, 0.03125,
          0.125, 0.25, 0.5, 2.0, 8.0, 64.0]


class TestBucketHistogram:
    def test_empty_histogram_is_all_zero(self):
        hist = BucketHistogram()
        assert hist.count == 0
        assert hist.quantile(0.5) == 0.0
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["counts"] == [0] * (len(LATENCY_BUCKETS_S) + 1)

    def test_observations_land_in_their_buckets(self):
        hist = BucketHistogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(value)
        # le=1.0 holds 0.5 and the boundary value 1.0 (le = "less than
        # or equal"), le=2.0 holds 1.5, le=4.0 holds 3.0, +Inf holds
        # the overflow.
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5

    def test_quantiles_are_exact_bucket_upper_bounds(self):
        hist = BucketHistogram(bounds=(1.0, 2.0, 4.0))
        for _ in range(90):
            hist.observe(0.5)
        for _ in range(9):
            hist.observe(1.5)
        hist.observe(3.0)
        assert hist.quantile(0.50) == 1.0
        assert hist.quantile(0.95) == 2.0
        assert hist.quantile(0.99) == 2.0
        assert hist.quantile(1.0) == 4.0

    def test_overflow_quantile_reports_the_last_finite_bound(self):
        hist = BucketHistogram(bounds=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.5) == 2.0

    def test_merge_is_commutative_to_the_byte(self):
        """Any partition of the observations, merged in any order,
        yields the same summary bytes — the property that makes
        ``--jobs N`` metrics reproducible."""
        partitions = [DYADIC[0:3], DYADIC[3:4], DYADIC[4:9], DYADIC[9:]]

        def merged(order):
            total = BucketHistogram()
            for index in order:
                part = BucketHistogram()
                for value in partitions[index]:
                    part.observe(value)
                total.merge(part)
            return json.dumps(total.summary(), sort_keys=True)

        flat = BucketHistogram()
        for value in DYADIC:
            flat.observe(value)
        expected = json.dumps(flat.summary(), sort_keys=True)
        assert merged([0, 1, 2, 3]) == expected
        assert merged([3, 2, 1, 0]) == expected
        assert merged([2, 0, 3, 1]) == expected

    def test_merge_summary_round_trips(self):
        a, b = BucketHistogram(), BucketHistogram()
        for value in DYADIC[:6]:
            a.observe(value)
        for value in DYADIC[6:]:
            b.observe(value)
        a.merge_summary(b.summary())
        flat = BucketHistogram()
        for value in DYADIC:
            flat.observe(value)
        assert a.summary() == flat.summary()

    def test_mismatched_bounds_refuse_to_merge(self):
        with pytest.raises(ValueError):
            BucketHistogram(bounds=(1.0,)).merge(
                BucketHistogram(bounds=(2.0,)))
        with pytest.raises(ValueError):
            BucketHistogram(bounds=(1.0,)).merge_summary(
                {"le": [2.0], "counts": [0, 0], "sum": 0.0})


class TestServiceMetrics:
    def _populated(self):
        metrics = ServiceMetrics()
        metrics.inc("requests.total", 3)
        metrics.inc("requests.kind.litmus", 2)
        metrics.inc("requests.kind.validate")
        metrics.gauge("queue.depth", 2)
        for value in DYADIC[:5]:
            metrics.observe("request.latency_s", value)
        metrics.sample("queue.depth", 2)
        metrics.sample("queue.depth", 1)
        return metrics

    def test_snapshot_validates_and_dumps_stably(self):
        snap = self._populated().snapshot()
        assert snap["schema"] == SERVEMETRICS_SCHEMA
        assert validate_servemetrics(snap) == []
        assert dump_servemetrics(snap) == dump_servemetrics(snap)
        assert snap["counters"]["requests.total"] == 3
        assert snap["samples"]["queue.depth"] == [2, 1]

    def test_merge_snapshot_is_commutative_on_the_stable_projection(self):
        a, b = ServiceMetrics(), ServiceMetrics()
        a.inc("jobs.executed", 2)
        b.inc("jobs.executed", 5)
        b.inc("jobs.failed")
        for value in DYADIC[:4]:
            a.observe("execute.s", value)
        for value in DYADIC[4:]:
            b.observe("execute.s", value)
        ab, ba = ServiceMetrics(), ServiceMetrics()
        ab.merge_snapshot(a.snapshot())
        ab.merge_snapshot(b.snapshot())
        ba.merge_snapshot(b.snapshot())
        ba.merge_snapshot(a.snapshot())
        assert dump_servemetrics(ab.snapshot()) \
            == dump_servemetrics(ba.snapshot())
        assert ab.snapshot()["counters"]["jobs.executed"] == 7

    def test_clear_resets_everything(self):
        metrics = self._populated()
        metrics.clear()
        snap = metrics.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}

    def test_sample_ring_is_bounded(self):
        metrics = ServiceMetrics(sample_ring=4)
        for value in range(10):
            metrics.sample("queue.depth", value)
        assert metrics.snapshot()["samples"]["queue.depth"] \
            == [6, 7, 8, 9]

    def test_validate_catches_malformed_summaries(self):
        snap = self._populated().snapshot()
        broken = json.loads(json.dumps(snap))
        broken["histograms"]["request.latency_s"]["counts"] = [1, 2]
        assert validate_servemetrics(broken)
        broken = json.loads(json.dumps(snap))
        broken["histograms"]["request.latency_s"]["count"] += 1
        assert validate_servemetrics(broken)
        assert validate_servemetrics({"schema": "nope"})


class TestExposition:
    def _snapshot(self):
        metrics = ServiceMetrics()
        metrics.inc("requests.total", 4)
        metrics.inc("serve.store.lru_hits", 2)
        metrics.gauge("utilization", 0.5)
        for value in DYADIC[:6]:
            metrics.observe("request.latency_s", value)
        return metrics.snapshot()

    def test_prometheus_text_agrees_with_the_json(self):
        snap = self._snapshot()
        text = render_exposition(snap)
        assert exposition_problems(text) == []
        parsed = parse_exposition(text)
        assert sample_value(parsed, "repro_serve_requests_total") == 4.0
        assert sample_value(parsed,
                            "repro_serve_store_lru_hits_total") == 2.0
        assert sample_value(parsed, "repro_serve_utilization") == 0.5
        latency = snap["histograms"]["request.latency_s"]
        assert sample_value(
            parsed, "repro_serve_request_latency_seconds_count") \
            == latency["count"]
        assert sample_value(
            parsed, "repro_serve_request_latency_seconds_sum") \
            == latency["sum"]
        assert sample_value(
            parsed, "repro_serve_request_latency_seconds_bucket",
            le="+Inf") == latency["count"]
        # Cumulative buckets are monotone and agree with the JSON's
        # per-bucket counts.
        running = 0
        for bound, count in zip(latency["le"], latency["counts"]):
            running += count
            assert sample_value(
                parsed, "repro_serve_request_latency_seconds_bucket",
                le=repr(float(bound))) == running

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("this is not an exposition\n")

    def test_problems_flag_nonmonotonic_buckets(self):
        text = ('# TYPE repro_serve_x_seconds histogram\n'
                'repro_serve_x_seconds_bucket{le="1.0"} 5\n'
                'repro_serve_x_seconds_bucket{le="2.0"} 3\n'
                'repro_serve_x_seconds_bucket{le="+Inf"} 5\n'
                'repro_serve_x_seconds_sum 2.0\n'
                'repro_serve_x_seconds_count 5\n')
        assert any("monoton" in problem
                   for problem in exposition_problems(text))

    def test_problems_flag_inf_count_disagreement(self):
        text = ('# TYPE repro_serve_x_seconds histogram\n'
                'repro_serve_x_seconds_bucket{le="1.0"} 3\n'
                'repro_serve_x_seconds_bucket{le="+Inf"} 3\n'
                'repro_serve_x_seconds_sum 2.0\n'
                'repro_serve_x_seconds_count 5\n')
        assert exposition_problems(text)

    def test_problems_flag_missing_type_lines(self):
        assert exposition_problems("repro_serve_mystery_total 3\n")


class TestConsumers:
    def _snapshot(self):
        metrics = ServiceMetrics()
        metrics.inc("requests.total", 8)
        metrics.inc("requests.kind.litmus", 8)
        metrics.inc("served.store", 4)
        metrics.inc("jobs.executed", 4)
        metrics.gauge("queue.depth", 1)
        metrics.gauge("inflight", 1)
        metrics.gauge("utilization", 0.5)
        for value in DYADIC[:8]:
            metrics.observe("request.latency_s", value)
        return metrics.snapshot()

    def test_metrics_rows_flatten_every_metric(self):
        rows = metrics_rows(self._snapshot())
        assert all(row["ev"] == "metric" for row in rows)
        kinds = {row["type"] for row in rows}
        assert kinds == {"counter", "gauge", "histogram"}
        latency = next(row for row in rows
                       if row["name"] == "request.latency_s")
        assert latency["buckets"]["+Inf"] == 0
        assert latency["count"] == 8
        # Rank 4 of the 8 dyadic observations falls in the le=0.01
        # bucket — the quantile is that bucket's exact upper bound.
        assert latency["p50"] == 0.01

    def test_render_top_reports_the_headline_numbers(self):
        stats = {"submitted": 8, "executed": 4, "deduped": 0,
                 "failed": 0, "uptime_s": 12.0, "jobs": 2,
                 "states": {"done": 8},
                 "store": {"entries": 4, "hits": 4, "misses": 4,
                           "hit_rate": 0.5, "lru_hits": 2,
                           "lru_misses": 2, "size_bytes": 1024}}
        frame = render_top(stats, self._snapshot(), qps=2.0,
                           base="http://127.0.0.1:1")
        assert "p50" in frame and "p95" in frame and "p99" in frame
        assert "queue" in frame
        assert "litmus" in frame
        assert "2.0" in frame  # the supplied QPS


class TestTelemetry:
    def test_sanitize_trace_id(self):
        assert telemetry.sanitize_trace_id("abc-DEF_1.2") \
            == "abc-DEF_1.2"
        assert telemetry.sanitize_trace_id("a/b") is None
        assert telemetry.sanitize_trace_id("  padded  ") == "padded"
        assert telemetry.sanitize_trace_id("") is None
        assert telemetry.sanitize_trace_id(None) is None
        assert telemetry.sanitize_trace_id("bad space") is None
        assert telemetry.sanitize_trace_id("x" * 65) is None

    def test_job_trace_emits_one_meta_and_a_root_span(self):
        trace = telemetry.JobTrace(trace_id="t-1", meta={"job": "j-x"})
        trace.record("serve.normalize", 0.25)
        trace.close(job="j-x", state="done")
        lines = trace.lines()
        head = json.loads(lines[0])
        assert head["ev"] == "meta"
        assert head["schema"] == "repro-trace/1"
        assert head["trace"] == "t-1"
        records = [json.loads(line) for line in lines[1:]]
        assert [r["name"] for r in records] \
            == ["serve.normalize", "serve.request"]
        root = records[-1]
        assert root["depth"] == 0 and root["state"] == "done"
        # Children parent on the root span by default.
        assert records[0]["parent"] == root["span"]
        assert all(r["trace"] == "t-1" for r in records)

    def test_close_is_idempotent(self):
        trace = telemetry.JobTrace()
        trace.close()
        trace.close()
        assert sum(1 for line in trace.lines()
                   if '"serve.request"' in line) == 1

    def test_child_context_parents_on_the_root(self):
        trace = telemetry.JobTrace(trace_id="t-2")
        context = trace.child_context(span_id="beef")
        assert context.trace_id == "t-2"
        assert context.span_id == "beef"
        assert context.parent_id == trace.root_id

    def test_fresh_trace_id_when_client_sends_none(self):
        trace = telemetry.JobTrace(trace_id=None)
        assert trace.trace_id

    def test_stamp_events_marks_unstamped_worker_events(self):
        context = telemetry.TraceContext("t-3", "span")
        drained = {"events": [{"ev": "state"},
                              {"ev": "span-exit", "trace": "already"}]}
        telemetry.stamp_events(drained, context)
        assert drained["events"][0]["trace"] == "t-3"
        assert drained["events"][1]["trace"] == "already"
        telemetry.stamp_events(None, context)  # tolerated
        telemetry.stamp_events({"events": []}, None)

    def test_bind_current_clear(self):
        context = telemetry.TraceContext("t-4", "s")
        telemetry.bind(context)
        try:
            assert telemetry.current() is context
        finally:
            telemetry.clear()
        assert telemetry.current() is None
