"""Tests for store-to-load forwarding (§4, Fig 3, Fig 4)."""

import pytest

from repro.lang import parse
from repro.opt import (
    After,
    Before,
    SlfPass,
    Top,
    slf_annotations,
    slf_pass,
    token_join,
)
from repro.opt.absval import AbsConst, AbsReg

TOP = Top()


class TestTokenLattice:
    def test_order_chain(self):
        """◦(v) ⊑ •(v) ⊑ ⊤ (Fig 3)."""
        assert token_join(Before(AbsConst(1)), After(AbsConst(1))) == \
            After(AbsConst(1))
        assert token_join(After(AbsConst(1)), TOP) == TOP
        assert token_join(Before(AbsConst(1)), TOP) == TOP

    def test_join_of_different_values_is_top(self):
        assert token_join(Before(AbsConst(1)), Before(AbsConst(2))) == TOP

    def test_join_idempotent_commutative(self):
        tokens = [TOP, Before(AbsConst(1)), After(AbsConst(1)),
                  Before(AbsReg("a"))]
        for a in tokens:
            assert token_join(a, a) == a
            for b in tokens:
                assert token_join(a, b) == token_join(b, a)


class TestFigure3Transitions:
    def run_states(self, source):
        return slf_annotations(parse(source))

    def test_na_store_sets_before(self):
        rows = self.run_states("x_na := 1; return 0;")
        assert rows[1][1].get("x") == Before(AbsConst(1))

    def test_release_write_moves_to_after(self):
        rows = self.run_states("x_na := 1; y_rel := 1; return 0;")
        assert rows[2][1].get("x") == After(AbsConst(1))

    def test_acquire_read_kills_after(self):
        rows = self.run_states(
            "x_na := 1; y_rel := 1; l := z_acq; return 0;")
        assert rows[3][1].get("x") == TOP

    def test_acquire_read_preserves_before(self):
        """§4/Fig 4: a permissioned location survives an acquire."""
        rows = self.run_states("x_na := 1; l := z_acq; return 0;")
        assert rows[2][1].get("x") == Before(AbsConst(1))

    def test_relaxed_accesses_preserve_tokens(self):
        rows = self.run_states(
            "x_na := 1; y_rlx := 2; l := y_rlx; return 0;")
        assert rows[3][1].get("x") == Before(AbsConst(1))

    def test_register_store_forwards_register(self):
        rows = self.run_states("x_na := r; return 0;")
        assert rows[1][1].get("x") == Before(AbsReg("r"))

    def test_register_reassignment_kills_token(self):
        rows = self.run_states("x_na := r; r := 5; return 0;")
        assert rows[2][1].get("x") == TOP

    def test_complex_expression_store_is_top(self):
        rows = self.run_states("x_na := r + 1; return 0;")
        assert rows[1][1].get("x") == TOP


class TestFigure4:
    SOURCE = """
    x_na := 42;
    l := y_acq;
    if l == 0 { a := x_na; y_rel := 1; }
    b := x_na;
    return b;
    """

    def test_both_loads_forwarded(self):
        optimized = slf_pass(parse(self.SOURCE))
        assert repr(optimized) == (
            "x_na := 42; l := y_acq; if (l == 0) then { a := 42; "
            "y_rel := 1 } else { skip }; b := 42; return b")

    def test_annotations_match_figure(self):
        rows = slf_annotations(parse(self.SOURCE))
        # {x ↦ ⊤} before the store, ◦(42) after, join is •(42)
        assert rows[0][1].get("x") == TOP
        assert rows[1][1].get("x") == Before(AbsConst(42))
        assert rows[2][1].get("x") == Before(AbsConst(42))
        assert rows[3][1].get("x") == After(AbsConst(42))  # after the join

    def test_fixpoint_converges_quickly_on_loops(self):
        """§4: the analysis reaches a fixpoint in ≤ 3 loop iterations."""
        program = parse(
            "x_na := 1; while c < 9 { a := x_na; y_rel := 1; c := c + 1; }"
            " return 0;")
        pass_ = SlfPass()
        pass_.run(program)
        assert pass_.stats.max_iterations <= 3


class TestSlfRewrites:
    @pytest.mark.parametrize("alpha", [
        "", "q := y_rlx;", "y_rlx := 7;", "q := y_acq;", "y_rel := 7;"])
    def test_example_2_11_patterns(self, alpha):
        """SLF across atomics (Example 2.11) fires for every α."""
        program = parse(f"x_na := 1; {alpha} b := x_na; return b;")
        optimized = slf_pass(program)
        assert "b := 1" in repr(optimized)

    def test_example_2_12_pattern_blocked(self):
        """SLF across a release-acquire pair must not fire (Example 2.12)."""
        program = parse(
            "x_na := 1; y_rel := 7; q := z_acq; b := x_na; return b;")
        optimized = slf_pass(program)
        assert "b := x_na" in repr(optimized)

    def test_branches_join_conservatively(self):
        program = parse(
            "if c { x_na := 1; } else { x_na := 2; } b := x_na; return b;")
        optimized = slf_pass(program)
        assert "b := x_na" in repr(optimized)  # values differ: no forward

    def test_same_value_in_both_branches_forwards(self):
        program = parse(
            "if c { x_na := 1; } else { x_na := 1; } b := x_na; return b;")
        optimized = slf_pass(program)
        assert "b := 1" in repr(optimized)

    def test_loop_body_store_forwards_within_loop(self):
        program = parse(
            "while c < 3 { x_na := 5; a := x_na; c := c + 1; } return 0;")
        optimized = slf_pass(program)
        assert "a := 5" in repr(optimized)

    def test_store_before_loop_with_clobbering_body_not_forwarded(self):
        program = parse(
            "x_na := 5; while c < 3 { a := x_na; x_na := c; c := c + 1; }"
            " return 0;")
        optimized = slf_pass(program)
        assert "a := x_na" in repr(optimized)

    def test_single_rmw_crossable(self):
        """One acq-rel RMW acts like acq-then-rel: ◦ → ◦ → • (Fig 3)."""
        program = parse(
            "x_na := 1; q := fadd_acq_rel(z_rlx, 1); b := x_na; return b;")
        optimized = slf_pass(program)
        assert "b := 1" in repr(optimized)

    def test_two_rmws_form_release_acquire_pair(self):
        program = parse(
            "x_na := 1; q := fadd_acq_rel(z_rlx, 1); "
            "r := fadd_acq_rel(z_rlx, 1); b := x_na; return b;")
        optimized = slf_pass(program)
        assert "b := x_na" in repr(optimized)

    def test_fences_follow_release_acquire(self):
        forwarded = slf_pass(parse(
            "x_na := 1; fence_rel; b := x_na; return b;"))
        assert "b := 1" in repr(forwarded)
        blocked = slf_pass(parse(
            "x_na := 1; fence_rel; fence_acq; b := x_na; return b;"))
        assert "b := x_na" in repr(blocked)
