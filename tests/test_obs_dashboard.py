"""The self-contained HTML dashboard: sections, data, zero deps."""

import json

from repro.obs import dashboard, history
from repro.obs.attrib import attrib_payload
from repro.obs.report import bench_payload

SECTIONS = ("Run history", "Rule coverage", "Attribution hotspots",
            "State space", "Invariants", "Cert store", "Service",
            "Service health", "Latest fuzz campaign", "Benchmarks")


def _entry(name, min_s):
    return {"name": name, "rounds": 3, "min_s": min_s,
            "mean_s": min_s * 1.1, "median_s": min_s, "max_s": min_s * 1.3,
            "extra": {}}


def _fixture_inputs(tmp_path):
    bench = bench_payload("demo", [_entry("fast", 0.01),
                                   _entry("slow", 2.0)])
    bench["meta"] = {"git_sha": "abc1234", "created_at":
                     "2026-08-06T00:00:00Z"}
    ledger = str(tmp_path / "ledger.jsonl")
    for min_s in (0.010, 0.011, 0.012, 0.010):
        history.append_records(
            ledger, history.ledger_records(
                bench_payload("demo", [_entry("fast", min_s)]),
                sha="abc1234", stamp="2026-08-06T00:00:00Z"))
    records, _ = history.read_ledger(ledger)
    coverage = {
        "schema": "repro-coverage/1", "total": 2, "covered": 1,
        "uncovered": ["seq.machine.never"],
        "rules": [
            {"id": "psna.thread.read", "layer": "psna",
             "description": "thread read step", "count": 42},
            {"id": "seq.machine.never", "layer": "seq",
             "description": "never fired", "count": 0},
        ],
    }
    attrib = attrib_payload({("psna.explore",): [0.8, 1.0, 3],
                             ("psna.explore", "psna.cert"): [0.2, 0.2, 9]},
                            {"rule.psna.cert.success": 5})
    fuzz = "fuzz campaign seed=0 budget=10\n10 case(s), 0 failure(s)"
    graph = {
        "schema": "repro-graph/1",
        "graphs": {
            "psna.explore": {
                "instances": 1, "states": 136, "edges": 240,
                "dedup_hits": 104, "dedup_misses": 136,
                "terminal_states": 4, "bottom_states": 0,
                "stuck_states": 0, "truncations": 0,
                "depth_max": 8, "peak_frontier": 12,
                "rules": {"rule.psna.thread.read": 92,
                          "rule.psna.thread.write": 16},
                "branching_hist": {"0": 4, "2": 132},
                "depth_hist": {"0": 1, "1": 3},
                "frontier_curve": [1, 3, 7, 12, 9, 4, 1],
                "frontier_stride": 1,
            },
        },
    }
    from repro.obs.monitor import (Monitor, inject_violation,
                                   monitor_payload)

    checker = Monitor("strict", 1)
    checker.checks["psna.view.monotonic"] = 240
    inject_violation(checker, "psna.view.monotonic")
    monitor = monitor_payload(checker)
    certstore = {
        "schema": "repro-certstore/1", "directory": ".repro-cache",
        "semantics": "psna-1", "entries": 139, "segments": 1,
        "size_bytes": 5420,
        "history": [
            {"hits": 0, "misses": 139, "writes": 139, "entries": 139},
            {"hits": 139, "misses": 0, "writes": 0, "entries": 139},
            {"event": "gc", "stale_segments": 1, "dropped_entries": 0},
        ],
    }
    serve = {
        "service": "repro-serve/1", "version": "1.0.0",
        "semantics": "psna-1", "jobs": 2, "uptime_s": 42.5,
        "submitted": 65, "deduped": 64, "executed": 65, "failed": 0,
        "states": {"queued": 0, "running": 0, "done": 129, "failed": 0},
        "closed": False,
        "store": {"schema": "repro-verdict/1", "directory": "verdicts",
                  "semantics": "psna-1", "entries": 65, "segments": 1,
                  "size_bytes": 14264, "hits": 65, "misses": 65,
                  "writes": 65, "hit_rate": 0.5},
    }
    from repro.serve.metrics import ServiceMetrics

    metrics = ServiceMetrics()
    metrics.inc("requests.total", 65)
    metrics.inc("requests.kind.litmus", 65)
    metrics.inc("served.store", 32)
    metrics.inc("jobs.executed", 33)
    metrics.inc("serve.store.lru_hits", 30)
    metrics.inc("serve.store.lru_misses", 2)
    metrics.gauge("inflight", 1)
    metrics.gauge("utilization", 0.5)
    for value in (0.001, 0.0078125, 0.015625, 0.125, 0.5):
        metrics.observe("request.latency_s", value)
    for depth in (0, 2, 3, 1, 0):
        metrics.sample("queue.depth", depth)
        metrics.sample("utilization", depth / 4)
    servemetrics = metrics.snapshot()
    return {"benches": [bench], "records": records, "coverage": coverage,
            "attrib": attrib, "fuzz_summary": fuzz, "graph": graph,
            "monitor": monitor, "certstore": certstore, "serve": serve,
            "servemetrics": servemetrics}


class TestBuildDashboard:
    def test_all_sections_render_from_fixtures(self, tmp_path):
        inputs = _fixture_inputs(tmp_path)
        page = dashboard.build_dashboard(
            inputs["benches"], inputs["records"],
            coverage=inputs["coverage"], attrib=inputs["attrib"],
            fuzz_summary=inputs["fuzz_summary"], graph=inputs["graph"],
            monitor=inputs["monitor"], certstore=inputs["certstore"],
            serve=inputs["serve"],
            servemetrics=inputs["servemetrics"],
            meta={"git_sha": "abc1234", "python": "3.12.0"})
        for section in SECTIONS:
            assert section in page
        # Populated, not placeholders:
        assert "no data" not in page
        assert "class=\"none\"" not in page
        assert "<svg" in page  # history sparkline
        assert "psna.explore" in page  # attribution stack
        assert "✗ never" in page  # uncovered rule marked with icon+label
        assert "0 failure(s)" in page
        assert "rule.psna.thread.read" in page  # hottest rule edges
        assert "unique search states" in page  # state-space tile
        assert "invariant violations" in page  # monitor tile
        assert "psna.view.monotonic" in page  # invariant row
        assert "injected canary" in page  # canary status, not a red FAIL
        assert "Violation witnesses" in page  # witness capture rendered
        assert "last-run hit rate" in page  # cert-store tile
        assert "hit rate over runs" in page  # cert-store sparkline
        assert "jobs submitted" in page  # service tile
        assert "verdict store: 65 entries" in page  # service store line
        assert "latency p95" in page  # service-health tile
        assert "request latency histogram" in page  # histogram sparkline
        assert "queue depth (drainer samples)" in page  # gauge sparkline
        assert "store LRU hit rate" in page  # LRU tile

    def test_standalone_html(self, tmp_path):
        inputs = _fixture_inputs(tmp_path)
        page = dashboard.build_dashboard(inputs["benches"],
                                         inputs["records"])
        assert page.startswith("<!doctype html>")
        assert page.count("<html") == page.count("</html>") == 1
        assert page.count("<body") == page.count("</body>") == 1
        assert "<style>" in page
        # Self-contained: no external fetches of any kind.
        for needle in ("http://", "https://", "<script", "@import",
                       "url("):
            assert needle not in page

    def test_empty_inputs_still_build(self):
        page = dashboard.build_dashboard([], [])
        for section in SECTIONS:
            assert section in page
        assert "empty ledger" in page

    def test_untrusted_text_is_escaped(self):
        bench = bench_payload("<img src=x>", [_entry("<b>evil</b>", 0.1)])
        page = dashboard.build_dashboard([bench], [])
        assert "<img src=x>" not in page
        assert "<b>evil</b>" not in page


class TestSparkline:
    def test_series_renders_polyline_and_endpoint(self):
        svg = dashboard.sparkline_svg([1.0, 2.0, 1.5])
        assert "<polyline" in svg and "<circle" in svg

    def test_single_point_renders_dot_only(self):
        svg = dashboard.sparkline_svg([1.0])
        assert "<polyline" not in svg and "<circle" in svg

    def test_flat_series_does_not_divide_by_zero(self):
        assert "<polyline" in dashboard.sparkline_svg([2.0, 2.0, 2.0])


class TestDashboardCli:
    def test_writes_file_from_artifact_directory(self, tmp_path, capsys):
        bench = bench_payload("demo", [_entry("fast", 0.01)])
        (tmp_path / "BENCH_demo.json").write_text(json.dumps(bench))
        ledger = tmp_path / history.DEFAULT_LEDGER
        history.append_records(
            str(ledger), history.ledger_records(bench, sha="abc",
                                                stamp="2026-08-06T00:00:00Z"))
        from repro.obs.monitor import Monitor, write_monitor_report

        write_monitor_report(str(tmp_path / dashboard.DEFAULT_MONITOR),
                             Monitor("strict", 1))
        out = tmp_path / "dashboard.html"
        assert dashboard.main(["--out", str(out),
                               "--root", str(tmp_path)]) == 0
        page = out.read_text()
        assert "repro dashboard" in page
        assert "fast" in page
        # monitor.json auto-discovered next to graph-stats.json
        assert "✓ clean" in page
        assert "1 ledger record(s)" in capsys.readouterr().out

    def test_missing_out_is_usage_error(self, capsys):
        assert dashboard.main([]) == 2
        assert "usage" in capsys.readouterr().out
