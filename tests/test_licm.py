"""Tests for loop invariant code motion (§4, Appendix D, Example 1.3)."""

from repro.lang import parse
from repro.opt import hoistable_locations, introduce_loop_loads, licm_pass
from repro.lang.ast import While, walk


def loop_of(stmt):
    for node in walk(stmt):
        if isinstance(node, While):
            return node
    raise AssertionError("no loop")


class TestHoistability:
    def test_plain_invariant_load(self):
        loop = loop_of(parse("while c < 3 { a := x_na; c := c + 1; }"))
        assert hoistable_locations(loop) == frozenset({"x"})

    def test_written_location_not_hoistable(self):
        loop = loop_of(parse(
            "while c < 3 { a := x_na; x_na := c; c := c + 1; }"))
        assert hoistable_locations(loop) == frozenset()

    def test_acquire_in_body_blocks_everything(self):
        loop = loop_of(parse(
            "while c < 3 { a := x_na; l := y_acq; c := c + 1; }"))
        assert hoistable_locations(loop) == frozenset()

    def test_release_in_body_allows_hoisting(self):
        """§4 permits β with release writes (only acquires block)."""
        loop = loop_of(parse(
            "while c < 3 { a := x_na; y_rel := a; c := c + 1; }"))
        assert hoistable_locations(loop) == frozenset({"x"})

    def test_rmw_blocks(self):
        loop = loop_of(parse(
            "while c < 3 { a := x_na; q := fadd_rlx_rlx(z_rlx, 1); "
            "c := c + 1; }"))
        assert hoistable_locations(loop) == frozenset()

    def test_multiple_locations(self):
        loop = loop_of(parse(
            "while c < 3 { a := x_na; b := w_na; w_na := 1; c := c + 1; }"))
        assert hoistable_locations(loop) == frozenset({"x"})


class TestLoadIntroduction:
    def test_load_inserted_before_loop(self):
        result = introduce_loop_loads(parse(
            "while c < 3 { a := x_na; c := c + 1; } return a;"))
        text = repr(result)
        assert text.startswith("_licm0 := x_na; while")

    def test_fresh_register_avoids_collisions(self):
        result = introduce_loop_loads(parse(
            "_licm0 := 1; while c < 3 { a := x_na; c := c + 1; } return a;"))
        assert "_licm1 := x_na" in repr(result)

    def test_nested_loops(self):
        result = introduce_loop_loads(parse(
            "while c < 2 { while d < 2 { a := x_na; d := d + 1; } "
            "c := c + 1; }"))
        # hoisted out of the inner loop; the outer loop body writes
        # nothing so it is hoisted there too
        assert repr(result).count(":= x_na") >= 1


class TestLicmPass:
    def test_example_1_3_shape(self):
        """LICM hoists the invariant load (Example 1.3 / §4)."""
        optimized = licm_pass(parse(
            "while b < 3 { a := x_na; b := b + a; } return b;"))
        text = repr(optimized)
        assert text.startswith("_licm0 := x_na; while")
        assert "a := _licm0" in text

    def test_zero_iteration_loop_gets_irrelevant_load(self):
        """The introduced load may be racy/irrelevant — that is the point
        (unsound in catch-fire models, fine here)."""
        optimized = licm_pass(parse(
            "while 0 { a := x_na; } return 0;"))
        assert "_licm0 := x_na" in repr(optimized)

    def test_noop_without_loops(self):
        program = parse("a := x_na; return a;")
        assert licm_pass(program) == program

    def test_loop_with_store_untouched(self):
        program = parse(
            "while c < 3 { a := x_na; x_na := a + 1; c := c + 1; } "
            "return 0;")
        assert "_licm" not in repr(licm_pass(program))
