"""Tests for the optimizer pipeline and translation validation (§4)."""

import pytest

from repro.lang import Skip, parse
from repro.lang.ast import Store, Const
from repro.lang.events import NA
from repro.litmus import ALL_TRANSFORMATION_CASES
from repro.opt import (
    OptimizationResult,
    Optimizer,
    ValidationError,
    optimize,
)

FIG4 = """
x_na := 42;
l := y_acq;
if l == 0 { a := x_na; y_rel := 1; }
b := x_na;
return b;
"""


def test_pipeline_runs_all_passes():
    result = Optimizer().optimize(parse(FIG4))
    assert [record.name for record in result.records] == [
        "slf", "llf", "dse", "licm"]


def test_pipeline_validates_fig4():
    result = Optimizer(validate=True).optimize(parse(FIG4))
    assert result.validated
    assert "b := 42" in repr(result.optimized)


def test_pipeline_summary_mentions_notions():
    result = Optimizer(validate=True).optimize(parse(FIG4))
    assert "slf: validated (simple)" in result.summary()


def test_combined_passes_compose():
    source = parse("""
    x_na := 7;
    a := x_na;
    b := x_na;
    x_na := 7;
    while c < 2 { d := w_na; c := c + 1; }
    return a + b + d;
    """)
    result = Optimizer(validate=True).optimize(source)
    text = repr(result.optimized)
    assert "a := 7" in text          # SLF
    assert "b := 7" in text          # SLF (or LLF)
    assert "_licm0 := w_na" in text  # LICM
    assert result.validated


def test_dse_validated_across_release():
    """The DSE-across-release pass needs the *advanced* notion."""
    source = parse("x_na := 1; y_rel := 1; x_na := 2; return 0;")
    result = Optimizer(validate=True).optimize(source)
    dse = next(record for record in result.records if record.name == "dse")
    assert dse.changed
    assert dse.verdict is not None and dse.verdict.valid
    assert dse.verdict.notion == "advanced"


def test_unsound_pass_rejected():
    """Translation validation catches a buggy pass."""

    def evil_pass(stmt):
        # "optimize" by deleting a live store
        from repro.lang.ast import Seq

        if isinstance(stmt, Seq):
            return Seq(tuple(
                Skip() if isinstance(s, Store) and s.mode is NA else s
                for s in stmt.stmts))
        return stmt

    optimizer = Optimizer(passes=(("evil", evil_pass),), validate=True)
    with pytest.raises(ValidationError, match="rejected"):
        optimizer.optimize(parse("x_na := 1; return 0;"))


def test_unchanged_passes_not_validated():
    result = Optimizer(validate=True).optimize(parse("return 0;"))
    assert all(record.verdict is None for record in result.records)
    assert result.validated


def test_optimize_convenience():
    optimized = optimize(parse("x_na := 3; b := x_na; return b;"))
    assert "b := 3" in repr(optimized)


@pytest.mark.parametrize(
    "case",
    [c for c in ALL_TRANSFORMATION_CASES if c.expected != "invalid"][:15],
    ids=lambda c: c.name)
def test_optimizer_validates_on_catalog_sources(case):
    """Running the validated optimizer over catalog sources never
    produces an unsound program."""
    result = Optimizer(validate=True).optimize(case.source)
    assert result.validated


def test_idempotence_on_fixpoint():
    once = optimize(parse(FIG4))
    twice = optimize(once)
    assert once == twice
