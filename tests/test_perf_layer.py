"""Tests for the hot-path performance layer.

Covers the three tentpoles of the perf PR: certification memoization
(:class:`CertCache`), canonical-key caching/interning
(:class:`KeyCache`, SEQ game closure memoization), and the parallel
sweep runner (:mod:`repro.runner`, ``--jobs``) — plus the exact
``max_states`` bound regression.

The load-bearing property throughout: caches and parallelism are pure
performance artifacts.  Every observable result — behavior sets, state
counts, SEQ verdicts, rendered CLI tables — must be identical with them
on or off.
"""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro import obs, runner
from repro.cli import main
from repro.lang import parse
from repro.lang.interp import WhileThread
from repro.litmus import EXTENDED_CASES
from repro.obs.metrics import MetricsRegistry
from repro.psna import (
    CertCache,
    KeyCache,
    Memory,
    Message,
    PsConfig,
    ThreadLts,
    View,
    canonical_key,
    certifiable,
    certification_key,
    decode_state,
    explore,
    initial_state,
)
from repro.seq.refinement import check_transformation

CACHED = PsConfig(promise_budget=1)
UNCACHED = replace(CACHED, enable_cert_cache=False, enable_key_cache=False)

SB = [parse("x_rlx := 1; a := y_rlx; return a;"),
      parse("y_rlx := 1; b := x_rlx; return b;")]


class TestStateBoundExact:
    """Regression for the off-by-one in ``_explore``'s state bound."""

    def test_bound_equal_to_space_is_complete(self):
        full = explore(SB, PsConfig(allow_promises=False))
        assert full.complete
        exact = explore(SB, PsConfig(allow_promises=False,
                                     max_states=full.states))
        assert exact.complete
        assert exact.states == full.states
        assert exact.behaviors == full.behaviors

    def test_bound_one_below_space_is_exact_and_incomplete(self):
        full = explore(SB, PsConfig(allow_promises=False))
        short = explore(SB, PsConfig(allow_promises=False,
                                     max_states=full.states - 1))
        assert not short.complete
        assert short.incomplete_reason == "state-bound"
        assert short.states == full.states - 1


class TestCertCache:
    def _promised(self, program: str, value: int = 1):
        promise = Message("x", Fraction(1), value,
                          View.singleton("x", Fraction(1)))
        thread = ThreadLts(WhileThread.start(parse(program)),
                           promises=frozenset({promise}))
        memory = Memory.initial(["x"]).add(promise)
        return thread, memory

    def test_hit_returns_memoized_verdict(self):
        config = PsConfig(values=(0, 1), allow_promises=False)
        thread, memory = self._promised("x_rlx := 1; return 0;")
        cache = CertCache()
        assert certifiable(thread, memory, config, cache)
        assert (cache.hits, cache.misses) == (0, 1)
        assert certifiable(thread, memory, config, cache)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_negative_verdicts_are_cached_too(self):
        config = PsConfig(values=(0, 1), allow_promises=False)
        thread, memory = self._promised("return 0;")
        cache = CertCache()
        assert not certifiable(thread, memory, config, cache)
        assert not certifiable(thread, memory, config, cache)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_empty_promises_bypass_the_cache(self):
        config = PsConfig(allow_promises=False)
        thread = ThreadLts(WhileThread.start(parse("return 0;")))
        cache = CertCache()
        assert certifiable(thread, Memory.initial(["x"]), config, cache)
        assert (cache.hits, cache.misses) == (0, 0)

    def test_key_invariant_under_timestamp_renaming(self):
        """Order-isomorphic timestamps canonicalize to the same key."""
        def build(ts: Fraction):
            promise = Message("x", ts, 1, View.singleton("x", ts))
            thread = ThreadLts(WhileThread.start(
                parse("x_rlx := 1; return 0;")),
                promises=frozenset({promise}))
            return thread, Memory.initial(["x"]).add(promise)

        low = certification_key(*build(Fraction(1)))
        high = certification_key(*build(Fraction(7, 2)))
        assert low == high

    def test_key_distinguishes_different_values(self):
        thread_a, memory_a = self._promised("x_rlx := 1; return 0;", 1)
        thread_b, memory_b = self._promised("x_rlx := 1; return 0;", 7)
        assert (certification_key(thread_a, memory_a)
                != certification_key(thread_b, memory_b))


class TestKeyCache:
    def test_canonical_key_memoized_per_state(self):
        state = initial_state(SB, PsConfig(allow_promises=False))
        cache = KeyCache()
        first = canonical_key(state, cache)
        second = canonical_key(state, cache)
        assert first == second
        assert isinstance(first, int)
        assert decode_state(first, cache.interner) == canonical_key(state)
        assert cache.hits == 1 and cache.misses == 1

    def test_legacy_object_keys_match_uncached_path(self):
        state = initial_state(SB, PsConfig(allow_promises=False))
        cache = KeyCache(encoded=False)
        first = canonical_key(state, cache)
        second = canonical_key(state, cache)
        assert first == second == canonical_key(state)
        assert cache.hits == 1 and cache.misses == 1

    def test_exploration_reports_cache_counters(self):
        result = explore(SB, CACHED)
        assert result.key_cache_misses > 0
        assert result.key_cache_hits > 0
        assert result.key_cache_hits + result.key_cache_misses == (
            result.dedup_hits + result.dedup_misses + 1)  # +1 initial state

    def test_counters_flushed_into_obs_session(self):
        with obs.session() as session:
            explore(SB, CACHED)
            counters = session.metrics.snapshot()["counters"]
        assert counters.get("psna.key.cache_hits", 0) > 0
        assert counters.get("psna.cert.cache_misses", 0) > 0


class TestCacheTransparency:
    """Caches on vs. off must be observationally identical (full catalog)."""

    @pytest.mark.parametrize(
        "case", EXTENDED_CASES, ids=lambda case: case.name)
    def test_explore_behaviors_identical(self, case):
        for program in (case.source, case.target):
            cached = explore([program], CACHED)
            plain = explore([program], UNCACHED)
            assert cached.behaviors == plain.behaviors
            assert cached.states == plain.states
            assert cached.complete == plain.complete
            assert plain.cert_cache_hits == plain.key_cache_hits == 0

    @pytest.mark.parametrize(
        "case", EXTENDED_CASES, ids=lambda case: case.name)
    def test_seq_verdicts_identical(self, case):
        cached = check_transformation(case.source, case.target, caching=True)
        plain = check_transformation(case.source, case.target, caching=False)
        assert (cached.valid, cached.notion) == (plain.valid, plain.notion)
        assert cached.complete == plain.complete

    def test_promise_heavy_exploration_actually_hits_the_cert_cache(self):
        lb = [parse("a := x_rlx; y_rlx := a; return a;"),
              parse("b := y_rlx; x_rlx := 1; return b;")]
        cached = explore(lb, CACHED)
        plain = explore(lb, UNCACHED)
        assert cached.behaviors == plain.behaviors
        assert cached.cert_cache_hits > 0


class TestRunner:
    NAMES = ["slf-basic", "na-reorder-diff-loc", "store-load-forward"]

    def _strip_timing(self, sweep):
        return [{key: value for key, value in payload.items()
                 if key != "time_s"}
                for payload, _counters in sweep]

    def test_parallel_payloads_match_serial(self):
        serial = runner.run_sweep(runner.litmus_case_worker, self.NAMES,
                                  jobs=1)
        parallel = runner.run_sweep(runner.litmus_case_worker, self.NAMES,
                                    jobs=2)
        assert self._strip_timing(serial) == self._strip_timing(parallel)

    def test_parallel_counters_merge_into_parent_session(self):
        with obs.session() as session:
            sweep = runner.run_sweep(runner.litmus_case_worker, self.NAMES,
                                     jobs=2)
            counters = session.metrics.snapshot()["counters"]
        assert counters.get("seq.game.states", 0) > 0
        # Per-case counters come back alongside each payload too.
        assert all(c.get("seq.game.states", 0) > 0 for _p, c in sweep)

    def test_serial_without_session_reports_empty_counters(self):
        sweep = runner.run_sweep(runner.litmus_case_worker, self.NAMES[:2],
                                 jobs=1)
        assert all(counters == {} for _payload, counters in sweep)

    def test_single_descriptor_never_pools(self):
        [(payload, _)] = runner.run_sweep(
            runner.litmus_case_worker, self.NAMES[:1], jobs=8)
        assert payload["case"] == self.NAMES[0]


class TestMergeSnapshot:
    def test_counters_gauges_histograms_fold_in(self):
        registry = MetricsRegistry()
        registry.inc("shared", 2)
        registry.observe("latency", 1.0)
        worker = MetricsRegistry()
        worker.inc("shared", 3)
        worker.inc("fresh")
        worker.gauge("depth", 7)
        worker.observe("latency", 5.0)
        registry.merge_snapshot(worker.snapshot())
        snap = registry.snapshot()
        assert snap["counters"] == {"shared": 5, "fresh": 1}
        assert snap["gauges"] == {"depth": 7}
        latency = snap["histograms"]["latency"]
        assert latency["count"] == 2
        assert latency["min"] == 1.0 and latency["max"] == 5.0


class TestJobsParityCLI:
    def test_litmus_table_byte_identical_across_jobs(self, capsys):
        assert main(["litmus", "--jobs", "1"]) == 0
        one = capsys.readouterr().out
        assert main(["litmus", "--jobs", "2"]) == 0
        two = capsys.readouterr().out
        assert one == two

    def test_adequacy_verdicts_identical_across_jobs(self, capsys):
        source = "x_na := 1; b := x_na; return b;"
        target = "x_na := 1; b := 1; return b;"
        assert main(["adequacy", source, target, "--jobs", "1"]) == 0
        one = capsys.readouterr().out
        assert main(["adequacy", source, target, "--jobs", "2"]) == 0
        two = capsys.readouterr().out
        assert one == two
