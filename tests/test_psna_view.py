"""Tests for timestamps and views (PS^na, Fig 5 preliminaries)."""

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.psna import View, ZERO, fresh_between, join_opt, view_leq_opt

times = st.fractions(min_value=0, max_value=8, max_denominator=8)
view_maps = st.dictionaries(st.sampled_from(["x", "y", "z"]), times,
                            max_size=3)
views = view_maps.map(View.of)


def test_default_timestamp_zero():
    assert View().get("x") == ZERO


def test_zero_entries_trimmed():
    assert View.of({"x": ZERO}) == View()


def test_set_get():
    view = View().set("x", Fraction(2))
    assert view.get("x") == 2
    assert view.get("y") == 0


def test_join_pointwise_max():
    a = View.of({"x": Fraction(1), "y": Fraction(3)})
    b = View.of({"x": Fraction(2)})
    joined = a.join(b)
    assert joined.get("x") == 2 and joined.get("y") == 3


def test_join_with_bottom_is_identity():
    view = View.of({"x": Fraction(1)})
    assert view.join(None) == view
    assert join_opt(None, view) == view
    assert join_opt(None, None) is None


@given(views)
def test_join_idempotent(view):
    assert view.join(view) == view


@given(views, views)
def test_join_commutative(a, b):
    assert a.join(b) == b.join(a)


@given(views, views, views)
def test_join_associative(a, b, c):
    assert a.join(b).join(c) == a.join(b.join(c))


@given(views, views)
def test_join_is_lub(a, b):
    joined = a.join(b)
    assert a.leq(joined) and b.leq(joined)


@given(views, views)
def test_leq_antisymmetric(a, b):
    if a.leq(b) and b.leq(a):
        assert a == b


def test_view_leq_opt_bottom():
    view = View.of({"x": Fraction(1)})
    assert view_leq_opt(None, view)
    assert view_leq_opt(None, None)
    assert not view_leq_opt(view, None)
    assert view_leq_opt(View(), None)  # the zero view has no entries


def test_fresh_between_midpoint():
    ts = fresh_between(Fraction(1), Fraction(2))
    assert Fraction(1) < ts < Fraction(2)


def test_fresh_between_open_end():
    assert fresh_between(Fraction(3), None) == Fraction(4)


@given(views)
def test_views_hashable(view):
    assert hash(view) == hash(View.of(view.as_dict()))
